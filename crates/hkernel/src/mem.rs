//! Page-granular address spaces, protections, copy-on-write, and the CPU
//! bus implementation.
//!
//! Two mapping kinds exist, matching the paper's model:
//!
//! * **Anonymous** pages are private. On `fork` the page frames are
//!   shared copy-on-write (a real kernel would do this with protection
//!   faults; we use `Arc` reference counts and count the copies so the
//!   fork benchmarks can report them).
//! * **Shared** pages are windows onto files in the shared partition:
//!   loads and stores operate directly on the file's bytes, so "a given
//!   shared object lies at the same virtual address in every address
//!   space" and stores are immediately visible to every process that
//!   mapped the segment.
//!
//! Hemlock maps not-yet-linked modules with [`Prot::NONE`] so the first
//! touch raises a protection fault into the lazy linker.
//!
//! Physical memory is *bounded*: every address space draws frames from a
//! [`FramePool`] (one per kernel, shared by all processes). Pages start
//! non-resident — anonymous pages as demand-zero [`PageKind::Zero`],
//! shared pages as windows that materialize on first touch — and the
//! kernel's clock hand evicts them back out under pressure: clean shared
//! pages are dropped and re-faulted through the full user-level fault
//! protocol, dirty shared pages are written back first, and anonymous
//! pages swap to kernel-owned files on the shared partition
//! ([`crate::layout::SWAP_FILE_PREFIX`]). First-touch materialization is
//! free (it models the eager mapping the simulator always did); only
//! pressure-induced traffic is counted and charged.

use crate::layout::{
    DEFAULT_FRAME_BUDGET, DEFAULT_SWAP_PAGES, PAGES_PER_SWAP_FILE, SWAP_FILE_PREFIX,
};
use crate::monitor::{AccessCtx, MonitorRef};
use hsfs::{FsError, Ino, SharedFs, PAGE_SIZE, SLOT_SIZE};
use hvm::bbcache::BbCache;
use hvm::{Access, Bus, Fault, Instr};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// One page frame of private memory.
type Frame = [u8; PAGE_SIZE as usize];

fn zero_frame() -> Arc<Frame> {
    Arc::new([0u8; PAGE_SIZE as usize])
}

/// Page protection bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prot(u8);

impl Prot {
    /// No access — the lazy-linking trap mapping.
    pub const NONE: Prot = Prot(0);
    /// Read-only.
    pub const R: Prot = Prot(1);
    /// Read/write.
    pub const RW: Prot = Prot(3);
    /// Read/execute.
    pub const RX: Prot = Prot(5);
    /// Read/write/execute.
    pub const RWX: Prot = Prot(7);

    /// True if reads are allowed.
    pub fn can_read(self) -> bool {
        self.0 & 1 != 0
    }
    /// True if writes are allowed.
    pub fn can_write(self) -> bool {
        self.0 & 2 != 0
    }
    /// True if instruction fetch is allowed.
    pub fn can_exec(self) -> bool {
        self.0 & 4 != 0
    }
    /// True if `access` is allowed.
    pub fn allows(self, access: Access) -> bool {
        match access {
            Access::Read => self.can_read(),
            Access::Write => self.can_write(),
            Access::Exec => self.can_exec(),
        }
    }
}

impl fmt::Debug for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.can_read() { 'r' } else { '-' },
            if self.can_write() { 'w' } else { '-' },
            if self.can_exec() { 'x' } else { '-' }
        )
    }
}

/// What backs one mapped page.
#[derive(Clone, Debug)]
pub enum PageKind {
    /// Demand-zero private memory: mapped but never touched, so no
    /// frame is held yet. Materializes (for free) on first access.
    Zero,
    /// Resident private memory (copy-on-write across `fork`).
    Anon(Arc<Frame>),
    /// Private memory paged out to swap slot `slot` (refcounted in the
    /// pool, so post-fork COW sharing survives a trip through swap).
    Swapped { slot: u32 },
    /// Page `page` of the shared-partition file `ino`.
    Shared { ino: Ino, page: u32 },
}

/// `PageEntry` flag: the page holds a pool frame right now.
const F_RESIDENT: u8 = 1;
/// `PageEntry` flag: referenced since the clock hand last passed
/// (the second chance of second-chance eviction).
const F_REFERENCED: u8 = 2;
/// `PageEntry` flag: a guest store hit this shared page since it was
/// paged in — eviction must take a (simulated) writeback first.
const F_DIRTY: u8 = 4;
/// `PageEntry` flag: this shared page was evicted at least once, so the
/// next touch surfaces a real fault into the user-level protocol (and
/// the repage is charged), unlike the free first touch.
const F_EVICTED: u8 = 8;
/// `PageEntry` flag: repaged by a fault whose instruction has not run
/// yet — the clock hand must not take it, or a knife-edge budget
/// livelocks on fault→repage→evict→fault at one address. The kernel
/// clears the pin when it next dispatches the owning process (by then
/// the restarted instruction has had its chance to retire).
const F_PINNED: u8 = 16;

/// One page-table entry.
#[derive(Clone, Debug)]
pub struct PageEntry {
    /// Backing storage.
    pub kind: PageKind,
    /// Protection.
    pub prot: Prot,
    /// Residency/eviction state (`F_*` bits).
    flags: u8,
}

impl PageEntry {
    fn new(kind: PageKind, prot: Prot) -> PageEntry {
        let flags = match kind {
            PageKind::Anon(_) => F_RESIDENT,
            _ => 0,
        };
        PageEntry { kind, prot, flags }
    }

    /// True if the page holds a physical frame (or aliases resident
    /// file bytes) right now.
    pub fn is_resident(&self) -> bool {
        self.flags & F_RESIDENT != 0
    }

    /// True if this shared page was evicted and not yet repaged.
    pub fn was_evicted(&self) -> bool {
        self.flags & F_EVICTED != 0
    }
}

/// Errors from kernel-side address-space manipulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// The range overlaps an existing mapping.
    Overlap { addr: u32 },
    /// The range (or part of it) is not mapped.
    NotMapped { addr: u32 },
    /// Address or length not page-aligned.
    Unaligned { addr: u32 },
    /// A guest access faulted during a kernel copy.
    Fault(Fault),
    /// The backing shared file was missing or too small.
    BadBacking(FsError),
    /// Physical frame allocation failed. Real pressure never surfaces
    /// this error — the kernel evicts (and ultimately OOM-kills)
    /// instead — so it is produced only by the chaos layer's
    /// `FrameAlloc` injection at map time.
    NoFrames { addr: u32 },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Overlap { addr } => write!(f, "mapping overlaps at {addr:#010x}"),
            MemError::NotMapped { addr } => write!(f, "address {addr:#010x} not mapped"),
            MemError::Unaligned { addr } => write!(f, "unaligned mapping at {addr:#010x}"),
            MemError::Fault(fault) => write!(f, "guest fault: {fault}"),
            MemError::BadBacking(e) => write!(f, "bad backing file: {e}"),
            MemError::NoFrames { addr } => {
                write!(f, "out of physical frames mapping {addr:#010x}")
            }
        }
    }
}

/// Memory-related counters for the cost model and the fork benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Pages copied by copy-on-write.
    pub cow_copies: u64,
    /// Pages mapped over their lifetime.
    pub pages_mapped: u64,
    /// Pages unmapped.
    pub pages_unmapped: u64,
    /// Bus accesses whose translation was served by the software TLB.
    pub tlb_hits: u64,
    /// Bus accesses that walked the page table (and refilled the TLB).
    pub tlb_misses: u64,
}

/// A page-pressure event, journaled by the pool for the embedding world
/// to pump into the trace ring (the kernel cannot record directly).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PageEvent {
    /// The clock hand evicted a page. `kind` is `shared-clean`,
    /// `shared-dirty`, or `anon`.
    Evicted {
        /// Owning process.
        pid: u32,
        /// Virtual address of the page.
        addr: u32,
        /// What was evicted.
        kind: &'static str,
    },
    /// A dirty shared page was flushed to its backing segment before
    /// its frame was dropped.
    Writeback {
        /// Owning process.
        pid: u32,
        /// Virtual address of the page.
        addr: u32,
    },
    /// A previously evicted/swapped page was brought back in.
    SwappedIn {
        /// Owning process.
        pid: u32,
        /// Virtual address of the page.
        addr: u32,
    },
}

/// Counter snapshot of a [`FramePool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Frame budget (pages).
    pub capacity: u64,
    /// Pages resident right now (may transiently exceed `capacity`
    /// between scheduler slices; the kernel rebalances at slice
    /// boundaries).
    pub resident: u64,
    /// High-water mark of `resident`.
    pub peak_resident: u64,
    /// Pages evicted by the clock hand.
    pub evictions: u64,
    /// Dirty shared pages written back before eviction.
    pub writebacks: u64,
    /// Anonymous pages written to the swap area.
    pub swap_outs: u64,
    /// Pages brought back in after an eviction (anonymous or shared).
    pub swap_ins: u64,
    /// Swap-area budget (pages).
    pub swap_pages: u32,
    /// Distinct swap slots currently allocated.
    pub swap_used: u32,
    /// Deterministic OOM kills taken when pool and swap were exhausted.
    pub oom_kills: u64,
}

#[derive(Debug)]
struct PoolInner {
    capacity: u64,
    resident: u64,
    peak_resident: u64,
    evictions: u64,
    writebacks: u64,
    swap_outs: u64,
    swap_ins: u64,
    oom_kills: u64,
    /// Optional per-process resident quota (pages); enforced by the
    /// kernel's rebalance pass, not by the pool itself.
    quota: Option<u64>,
    swap_pages: u32,
    next_slot: u32,
    free_slots: Vec<u32>,
    /// Swap-slot reference counts (a slot is shared after fork).
    slot_refs: BTreeMap<u32, u32>,
    /// Backing file for each block of `PAGES_PER_SWAP_FILE` slots,
    /// created lazily on first swap-out into that block.
    swap_files: Vec<Ino>,
    journal: Vec<PageEvent>,
}

/// The bounded physical frame pool (DESIGN.md §10).
///
/// One pool is shared — through cheap clonable handles, like
/// [`hfault::FaultHandle`] — by every address space of a kernel, so
/// residency accounting spans processes. Each *mapping* of a resident
/// page is charged one frame (a COW-shared frame counts once per
/// address space — a documented simplification that errs toward
/// pressure). The pool never fails an allocation: materialization may
/// overshoot the budget mid-slice, and the kernel evicts back down to
/// it between slices, OOM-killing a victim when pool *and* swap are
/// exhausted.
#[derive(Clone, Debug)]
pub struct FramePool(Arc<Mutex<PoolInner>>);

impl Default for FramePool {
    fn default() -> FramePool {
        FramePool::new(DEFAULT_FRAME_BUDGET, DEFAULT_SWAP_PAGES)
    }
}

impl FramePool {
    /// A pool of `capacity` frames backed by `swap_pages` of swap.
    pub fn new(capacity: u64, swap_pages: u32) -> FramePool {
        FramePool(Arc::new(Mutex::new(PoolInner {
            capacity: capacity.max(1),
            resident: 0,
            peak_resident: 0,
            evictions: 0,
            writebacks: 0,
            swap_outs: 0,
            swap_ins: 0,
            oom_kills: 0,
            quota: None,
            swap_pages,
            next_slot: 0,
            free_slots: Vec::new(),
            slot_refs: BTreeMap::new(),
            swap_files: Vec::new(),
            journal: Vec::new(),
        })))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        // invariant: the pool mutex is only held for short bookkeeping
        // sections that cannot panic, so it cannot be poisoned.
        self.0.lock().expect("frame pool lock")
    }

    /// True if `other` is a handle to the same pool.
    pub fn same_pool(&self, other: &FramePool) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Changes the frame budget (takes effect at the next rebalance).
    pub fn set_capacity(&self, frames: u64) {
        self.lock().capacity = frames.max(1);
    }

    /// Changes the swap budget. Already-allocated slots stay valid.
    pub fn set_swap_pages(&self, pages: u32) {
        self.lock().swap_pages = pages;
    }

    /// Sets (or clears) the per-process resident quota.
    pub fn set_quota(&self, quota: Option<u64>) {
        self.lock().quota = quota;
    }

    /// The per-process resident quota, if any.
    pub fn quota(&self) -> Option<u64> {
        self.lock().quota
    }

    /// The frame budget.
    pub fn capacity(&self) -> u64 {
        self.lock().capacity
    }

    /// Pages resident right now.
    pub fn resident(&self) -> u64 {
        self.lock().resident
    }

    /// True if more pages are resident than the budget allows.
    pub fn over_budget(&self) -> bool {
        let inner = self.lock();
        inner.resident > inner.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        let inner = self.lock();
        PoolStats {
            capacity: inner.capacity,
            resident: inner.resident,
            peak_resident: inner.peak_resident,
            evictions: inner.evictions,
            writebacks: inner.writebacks,
            swap_outs: inner.swap_outs,
            swap_ins: inner.swap_ins,
            swap_pages: inner.swap_pages,
            swap_used: inner.next_slot - inner.free_slots.len() as u32,
            oom_kills: inner.oom_kills,
        }
    }

    /// Drains the pressure-event journal (world → trace ring).
    pub fn drain_events(&self) -> Vec<PageEvent> {
        std::mem::take(&mut self.lock().journal)
    }

    /// Power-cut reset: frames and swap slots are volatile, so nothing
    /// is resident and no swap slot is allocated after a crash (the
    /// swap *files* on the shared partition are reclaimed separately by
    /// boot-time fsck). Configuration (capacity, swap budget, quota)
    /// and cumulative counters survive — they describe the machine and
    /// its history, not the lost state.
    pub fn reset_volatile(&self) {
        let mut inner = self.lock();
        inner.resident = 0;
        inner.next_slot = 0;
        inner.free_slots.clear();
        inner.slot_refs.clear();
        inner.swap_files.clear();
        inner.journal.clear();
    }

    /// Counts a deterministic OOM kill.
    pub fn count_oom_kill(&self) {
        self.lock().oom_kills += 1;
    }

    fn charge(&self, pages: u64) {
        let mut inner = self.lock();
        inner.resident += pages;
        inner.peak_resident = inner.peak_resident.max(inner.resident);
    }

    fn credit(&self, pages: u64) {
        let mut inner = self.lock();
        inner.resident = inner.resident.saturating_sub(pages);
    }

    fn count_eviction(&self, pid: u32, addr: u32, kind: &'static str) {
        let mut inner = self.lock();
        inner.evictions += 1;
        inner.journal.push(PageEvent::Evicted { pid, addr, kind });
    }

    fn count_writeback(&self, pid: u32, addr: u32) {
        let mut inner = self.lock();
        inner.writebacks += 1;
        inner.journal.push(PageEvent::Writeback { pid, addr });
    }

    fn count_swap_out(&self) {
        self.lock().swap_outs += 1;
    }

    fn count_swap_in(&self, pid: u32, addr: u32) {
        let mut inner = self.lock();
        inner.swap_ins += 1;
        inner.journal.push(PageEvent::SwappedIn { pid, addr });
    }

    /// Allocates a swap slot (refcount 1), or `None` when swap is full.
    fn alloc_swap_slot(&self) -> Option<u32> {
        let mut inner = self.lock();
        let slot = match inner.free_slots.pop() {
            Some(s) => s,
            None if inner.next_slot < inner.swap_pages => {
                let s = inner.next_slot;
                inner.next_slot += 1;
                s
            }
            None => return None,
        };
        inner.slot_refs.insert(slot, 1);
        Some(slot)
    }

    /// Returns a just-allocated slot unused (eviction aborted).
    fn release_slot(&self, slot: u32) {
        let mut inner = self.lock();
        inner.slot_refs.remove(&slot);
        inner.free_slots.push(slot);
    }

    /// One more mapping references `slot` (fork of a swapped page).
    fn slot_ref_inc(&self, slot: u32) {
        let mut inner = self.lock();
        *inner.slot_refs.entry(slot).or_insert(0) += 1;
    }

    /// One mapping dropped `slot`; frees it at refcount zero.
    fn slot_unref(&self, slot: u32) {
        let mut inner = self.lock();
        if let Some(rc) = inner.slot_refs.get_mut(&slot) {
            *rc -= 1;
            if *rc == 0 {
                inner.slot_refs.remove(&slot);
                inner.free_slots.push(slot);
            }
        }
    }

    /// The backing file and byte offset of swap slot `slot`. The file
    /// must have been created by a prior [`FramePool::ensure_swap_file`].
    fn slot_location(&self, slot: u32) -> Option<(Ino, usize)> {
        let inner = self.lock();
        let file = (slot / PAGES_PER_SWAP_FILE) as usize;
        let ino = *inner.swap_files.get(file)?;
        Some((ino, ((slot % PAGES_PER_SWAP_FILE) * PAGE_SIZE) as usize))
    }

    /// Creates (lazily) the swap file backing `slot`. Swap files live on
    /// the shared partition as mode-0600 root-owned segments, so they
    /// behave like every other backing file (and no guest can map them).
    fn ensure_swap_file(&self, shared: &mut SharedFs, slot: u32) -> Result<(), FsError> {
        let file = (slot / PAGES_PER_SWAP_FILE) as usize;
        loop {
            let next = self.lock().swap_files.len();
            if next > file {
                return Ok(());
            }
            let path = format!("{SWAP_FILE_PREFIX}{next}");
            let ino = shared.create_file(&path, 0o600, 0)?;
            shared.fs.truncate(ino, SLOT_SIZE as u64)?;
            self.lock().swap_files.push(ino);
        }
    }
}

/// Entries in the direct-mapped software TLB. Must be a power of two.
pub const TLB_ENTRIES: usize = 64;

/// Tag marking an invalid TLB entry. A virtual page number is
/// `addr / PAGE_SIZE < 2^20`, so `u32::MAX` can never be a real tag.
const TLB_INVALID: u32 = u32::MAX;

/// A direct-mapped translation cache: vpn → slab slot. Consulted by the
/// bus before the `BTreeMap` page walk. Structural changes that create
/// or destroy translations (map/unmap/fork) flush it whole; protection
/// changes and evictions invalidate only the affected pages' entries,
/// so the rest of a hot working set stays warm across an `mprotect` or
/// a pressure pass (E6 measures the difference).
#[derive(Clone, Debug)]
struct Tlb {
    tags: [u32; TLB_ENTRIES],
    slots: [u32; TLB_ENTRIES],
}

impl Default for Tlb {
    fn default() -> Tlb {
        Tlb {
            tags: [TLB_INVALID; TLB_ENTRIES],
            slots: [0; TLB_ENTRIES],
        }
    }
}

impl Tlb {
    /// Home index of a vpn: the low bits XOR-folded with every higher
    /// group of index bits. Plain low-bit indexing is pathological for
    /// shared segments — they live in 1 MB slots, so the text pages of
    /// distinct public modules have vpns differing by multiples of 256
    /// and *all alias to one entry*; a 40-module call chain then misses
    /// on every transition. Folding keeps consecutive pages (sequential
    /// scans) conflict-free within an aligned block while spreading any
    /// power-of-two stride: segment-slot neighbors land 4 indices
    /// apart. Misses cost host time, never simulated time, so the
    /// index choice is invisible to the cost model.
    #[inline]
    fn index(vpn: u32) -> usize {
        const BITS: u32 = (TLB_ENTRIES as u32).trailing_zeros();
        let folded = vpn ^ (vpn >> BITS) ^ (vpn >> (2 * BITS)) ^ (vpn >> (3 * BITS));
        folded as usize & (TLB_ENTRIES - 1)
    }

    #[inline]
    fn lookup(&self, vpn: u32) -> Option<u32> {
        let i = Tlb::index(vpn);
        if self.tags[i] == vpn {
            Some(self.slots[i])
        } else {
            None
        }
    }

    #[inline]
    fn fill(&mut self, vpn: u32, slot: u32) {
        let i = Tlb::index(vpn);
        self.tags[i] = vpn;
        self.slots[i] = slot;
    }

    fn flush(&mut self) {
        self.tags = [TLB_INVALID; TLB_ENTRIES];
    }

    /// Drops the entry for one page, if cached. Direct mapping makes
    /// this a single compare: only `vpn`'s home index can hold it.
    #[inline]
    fn invalidate(&mut self, vpn: u32) {
        let i = Tlb::index(vpn);
        if self.tags[i] == vpn {
            self.tags[i] = TLB_INVALID;
        }
    }

    /// Invalidates a contiguous range of pages. Falls back to a whole
    /// flush once the range covers every index anyway.
    fn invalidate_range(&mut self, first_vpn: u32, pages: u32) {
        if pages as usize >= TLB_ENTRIES {
            self.flush();
            return;
        }
        for p in first_vpn..first_vpn + pages {
            self.invalidate(p);
        }
    }
}

/// A per-process page table.
///
/// Page entries live in a slab (`entries` + `free`) so a slot index,
/// once handed out, stays valid until that page is unmapped; the
/// `pages` tree maps virtual page numbers to slots. The software TLB
/// caches recent vpn→slot translations for the bus hot path.
///
/// invariant: every slot reachable from `pages` (or cached in the TLB,
/// which is flushed/invalidated on unmap) holds `Some` entry — unmap is
/// the only operation that clears a slot, and it removes the `pages`
/// mapping in the same call. The `expect("live slot")` lookups below
/// all lean on this.
#[derive(Debug, Default)]
pub struct AddressSpace {
    pages: BTreeMap<u32, u32>,
    entries: Vec<Option<PageEntry>>,
    free: Vec<u32>,
    tlb: Tlb,
    /// Counters (cow copies count against the space that triggered them).
    pub stats: MemStats,
    /// Chaos hook: unarmed (inert) unless a fault plan is installed.
    faults: hfault::FaultHandle,
    /// The frame pool this space draws from. A fresh space gets a
    /// private default pool; the kernel re-attaches its shared pool at
    /// spawn/exec, before anything is mapped.
    pool: FramePool,
    /// Pages of this space currently resident (charged to the pool).
    resident: u64,
    /// Pages carrying `F_PINNED` (skips the unpin sweep when zero).
    pinned: u32,
    /// Decoded basic-block cache (DESIGN.md §12). Disabled until the
    /// kernel configures it; invalidated in lock-step with the TLB.
    bb: BbCache,
}

// The default `BbCache` assumes this geometry; keep them in sync.
const _: () = assert!(PAGE_SIZE == 4096);

impl Clone for AddressSpace {
    fn clone(&self) -> AddressSpace {
        // Each space is charged for its own resident mappings (a COW
        // frame counts once per space — a simplification that errs
        // toward pressure), and swapped pages share their slot through
        // the pool's refcount.
        self.pool.charge(self.resident);
        for entry in self.entries.iter().flatten() {
            if let PageKind::Swapped { slot } = entry.kind {
                self.pool.slot_ref_inc(slot);
            }
        }
        AddressSpace {
            pages: self.pages.clone(),
            entries: self.entries.clone(),
            free: self.free.clone(),
            tlb: self.tlb.clone(),
            stats: self.stats,
            faults: self.faults.clone(),
            pool: self.pool.clone(),
            resident: self.resident,
            pinned: self.pinned,
            // Like the TLB on fork: the clone starts with a cold cache.
            bb: self.bb.fresh_like(),
        }
    }
}

impl Drop for AddressSpace {
    fn drop(&mut self) {
        self.surrender();
    }
}

/// Outcome of one [`AddressSpace::evict_page`] attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EvictOutcome {
    /// The page was evicted and its frame returned to the pool.
    Evicted,
    /// An anonymous page had nowhere to go: the swap area is full.
    SwapFull,
    /// The chaos layer failed the swap/writeback I/O; the page stays
    /// resident and the clock hand moves on.
    Injected,
    /// The vpn was not a resident page (stale clock hand).
    NotResident,
}

/// Outcome of an [`AddressSpace::repage_shared`] attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepageOutcome {
    /// The evicted shared page is resident again.
    Repaged,
    /// The address is not an evicted shared page — not this fault.
    NotEvicted,
    /// The chaos layer failed the backing read.
    Injected,
}

fn vpn(addr: u32) -> u32 {
    addr / PAGE_SIZE
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace::default()
    }

    /// Installs a fault-injection handle (chaos testing; see DESIGN.md §8).
    pub fn arm_faults(&mut self, faults: hfault::FaultHandle) {
        self.faults = faults;
    }

    /// Attaches the kernel's shared frame pool. Must happen before any
    /// page becomes resident (spawn/exec attach into an empty space).
    pub fn attach_pool(&mut self, pool: &FramePool) {
        debug_assert_eq!(self.resident, 0, "attach_pool before first touch");
        self.pool = pool.clone();
    }

    /// The pool this space draws from.
    pub fn pool(&self) -> &FramePool {
        &self.pool
    }

    /// Pages of this space resident right now.
    pub fn resident_pages(&self) -> u64 {
        self.resident
    }

    /// Returns every pool charge held by this space. Idempotent: the
    /// page table is cleared, so `Drop` (which calls this too) finds
    /// nothing left to credit.
    fn surrender(&mut self) {
        self.pool.credit(self.resident);
        self.resident = 0;
        for entry in self.entries.iter().flatten() {
            if let PageKind::Swapped { slot } = entry.kind {
                self.pool.slot_unref(slot);
            }
        }
        let mapped = self.pages.len() as u64;
        self.pages.clear();
        self.entries.clear();
        self.free.clear();
        self.tlb.flush();
        // Teardown drops blocks silently, like the uncounted TLB flush
        // above (lazy ASID-style reuse; nothing will run here again).
        self.bb.flush(None);
        self.pinned = 0;
        self.stats.pages_unmapped += mapped;
    }

    /// Immediately frees everything (the OOM path — ordinary zombies
    /// keep their memory until reaped so parents can inspect it).
    pub fn release_all(&mut self) {
        self.surrender();
    }

    /// Restores an evicted shared page after its fault bounced through
    /// the user-level fault→handler→map→restart protocol. Page-granular:
    /// no remap, the existing entry just becomes resident again.
    pub fn repage_shared(&mut self, pid: u32, addr: u32) -> RepageOutcome {
        let Some(&slot) = self.pages.get(&vpn(addr)) else {
            return RepageOutcome::NotEvicted;
        };
        let AddressSpace {
            entries,
            faults,
            pool,
            resident,
            pinned,
            ..
        } = self;
        let Some(entry) = entries[slot as usize].as_mut() else {
            return RepageOutcome::NotEvicted;
        };
        if !matches!(entry.kind, PageKind::Shared { .. }) || entry.flags & F_EVICTED == 0 {
            return RepageOutcome::NotEvicted;
        }
        if faults.should_inject(hfault::FaultSite::SwapRead) {
            return RepageOutcome::Injected;
        }
        // Pinned until the owner is dispatched: the faulting instruction
        // must retire once before the clock hand may take this page
        // again, or a knife-edge budget never makes progress.
        entry.flags = (entry.flags & !(F_EVICTED | F_DIRTY)) | F_RESIDENT | F_REFERENCED | F_PINNED;
        *pinned += 1;
        *resident += 1;
        pool.charge(1);
        pool.count_swap_in(pid, addr & !(PAGE_SIZE - 1));
        RepageOutcome::Repaged
    }

    /// Pages currently pinned by fault-time repage.
    pub(crate) fn pinned_pages(&self) -> u32 {
        self.pinned
    }

    /// Clears every repage pin (the kernel calls this when dispatching
    /// the owning process: the restarted instructions have run).
    pub(crate) fn unpin_all(&mut self) {
        if self.pinned == 0 {
            return;
        }
        for entry in self.entries.iter_mut().flatten() {
            entry.flags &= !F_PINNED;
        }
        self.pinned = 0;
    }

    /// One forward sweep of the clock hand over this space: starting at
    /// `from_vpn`, clears referenced bits as second chances and returns
    /// the first unreferenced resident vpn, or `None` when the sweep
    /// falls off the end (the kernel wraps by moving to the next
    /// process, then back around). Deliberately non-wrapping so a
    /// caller skipping unevictable pages (`from = vpn + 1`) always
    /// terminates.
    pub(crate) fn clock_scan(&mut self, from_vpn: u32) -> Option<u32> {
        let AddressSpace { pages, entries, .. } = self;
        for (&vp, &slot) in pages.range(from_vpn..) {
            let entry = entries[slot as usize].as_mut().expect("live slot");
            if entry.flags & F_RESIDENT == 0 {
                continue;
            }
            // A repage pin also keeps its reference bit: the page's
            // second chance starts after the owner runs, not before.
            if entry.flags & F_PINNED != 0 {
                continue;
            }
            if entry.flags & F_REFERENCED != 0 {
                entry.flags &= !F_REFERENCED;
                continue;
            }
            return Some(vp);
        }
        None
    }

    /// Evicts the resident page at `page_vpn`, returning its frame to
    /// the pool. Shared pages drop to `F_EVICTED` (dirty ones take a
    /// simulated writeback first — the bytes already alias the backing
    /// file, so durability is free; the writeback is the counted disk
    /// cost). Anonymous pages are written to a swap slot.
    pub(crate) fn evict_page(
        &mut self,
        pid: u32,
        page_vpn: u32,
        shared: &mut SharedFs,
    ) -> EvictOutcome {
        let addr = page_vpn * PAGE_SIZE;
        let Some(&slot) = self.pages.get(&page_vpn) else {
            return EvictOutcome::NotResident;
        };
        let AddressSpace {
            entries,
            tlb,
            faults,
            pool,
            resident,
            bb,
            ..
        } = self;
        let entry = entries[slot as usize].as_mut().expect("live slot");
        if entry.flags & F_RESIDENT == 0 || entry.flags & F_PINNED != 0 {
            return EvictOutcome::NotResident;
        }
        match &entry.kind {
            PageKind::Shared { .. } => {
                let dirty = entry.flags & F_DIRTY != 0;
                if dirty {
                    if faults.should_inject(hfault::FaultSite::SwapWrite) {
                        return EvictOutcome::Injected;
                    }
                    pool.count_writeback(pid, addr);
                }
                entry.flags = (entry.flags & !(F_RESIDENT | F_REFERENCED | F_DIRTY)) | F_EVICTED;
                pool.count_eviction(
                    pid,
                    addr,
                    if dirty {
                        "shared-dirty"
                    } else {
                        "shared-clean"
                    },
                );
            }
            PageKind::Anon(frame) => {
                let Some(swap_slot) = pool.alloc_swap_slot() else {
                    return EvictOutcome::SwapFull;
                };
                if pool.ensure_swap_file(shared, swap_slot).is_err() {
                    pool.release_slot(swap_slot);
                    return EvictOutcome::SwapFull;
                }
                if faults.should_inject(hfault::FaultSite::SwapWrite) {
                    pool.release_slot(swap_slot);
                    return EvictOutcome::Injected;
                }
                // invariant: `ensure_swap_file` above either created the
                // backing file for this slot or we bailed with SwapFull.
                let (ino, off) = pool.slot_location(swap_slot).expect("swap file ensured");
                let bytes = frame.clone();
                match shared.fs.file_bytes_mut(ino) {
                    Ok(file) => file[off..off + PAGE_SIZE as usize].copy_from_slice(&bytes[..]),
                    Err(_) => {
                        pool.release_slot(swap_slot);
                        return EvictOutcome::SwapFull;
                    }
                }
                entry.kind = PageKind::Swapped { slot: swap_slot };
                entry.flags &= !(F_RESIDENT | F_REFERENCED | F_DIRTY);
                pool.count_swap_out();
                pool.count_eviction(pid, addr, "anon");
            }
            PageKind::Zero | PageKind::Swapped { .. } => return EvictOutcome::NotResident,
        }
        tlb.invalidate(page_vpn);
        bb.invalidate_page(page_vpn, "evict");
        *resident -= 1;
        pool.credit(1);
        EvictOutcome::Evicted
    }

    /// Number of mapped pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Looks up the entry covering `addr`.
    pub fn entry(&self, addr: u32) -> Option<&PageEntry> {
        let slot = *self.pages.get(&vpn(addr))?;
        self.entries[slot as usize].as_ref()
    }

    /// Stores `entry` in a free slab slot and returns the slot index.
    fn alloc_slot(&mut self, entry: PageEntry) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.entries[slot as usize] = Some(entry);
                slot
            }
            None => {
                self.entries.push(Some(entry));
                (self.entries.len() - 1) as u32
            }
        }
    }

    /// The slab entry for a mapped vpn (must exist).
    fn entry_at_slot_mut(&mut self, slot: u32) -> &mut PageEntry {
        self.entries[slot as usize].as_mut().expect("live slot")
    }

    /// True if `addr`'s translation is currently cached in the TLB
    /// (probing does not touch the hit/miss counters).
    pub fn tlb_cached(&self, addr: u32) -> bool {
        self.tlb.lookup(vpn(addr)).is_some()
    }

    /// Empties the TLB because the owning process migrated to a
    /// different simulated CPU: translations cached on the old CPU are
    /// unreachable there, and the new CPU starts cold.
    pub(crate) fn tlb_migrate_flush(&mut self) {
        self.tlb.flush();
        // Decoded blocks are CPU-local state in spirit: a migration
        // starts cold on the new CPU, and the drop is observable.
        self.bb.flush(Some("migrate"));
    }

    /// The decoded basic-block cache (counters, journal, test hooks).
    pub fn bbcache(&self) -> &BbCache {
        &self.bb
    }

    /// Mutable access to the block cache (kernel configuration and the
    /// wraparound test hook).
    pub fn bbcache_mut(&mut self) -> &mut BbCache {
        &mut self.bb
    }

    fn check_range(addr: u32, len: u32) -> Result<(u32, u32), MemError> {
        if !addr.is_multiple_of(PAGE_SIZE) || len == 0 {
            return Err(MemError::Unaligned { addr });
        }
        let pages = len.div_ceil(PAGE_SIZE);
        Ok((vpn(addr), pages))
    }

    /// Maps `len` bytes of zeroed private memory at `addr`.
    pub fn map_anon(&mut self, addr: u32, len: u32, prot: Prot) -> Result<(), MemError> {
        let (first, pages) = Self::check_range(addr, len)?;
        for p in first..first + pages {
            if self.pages.contains_key(&p) {
                return Err(MemError::Overlap {
                    addr: p * PAGE_SIZE,
                });
            }
        }
        if self.faults.should_inject(hfault::FaultSite::FrameAlloc) {
            return Err(MemError::NoFrames { addr });
        }
        for p in first..first + pages {
            // Demand-zero: no frame until first touch.
            let slot = self.alloc_slot(PageEntry::new(PageKind::Zero, prot));
            self.pages.insert(p, slot);
        }
        self.stats.pages_mapped += pages as u64;
        self.tlb.flush();
        // Parity with the TLB event; the range was unmapped, so this
        // can never drop a block (and so never journals).
        self.bb.invalidate_vpns(first, pages, "map");
        Ok(())
    }

    /// Maps `len` bytes at `addr` backed by shared file `ino`, starting at
    /// file page `file_page`.
    pub fn map_shared(
        &mut self,
        addr: u32,
        len: u32,
        prot: Prot,
        ino: Ino,
        file_page: u32,
    ) -> Result<(), MemError> {
        let (first, pages) = Self::check_range(addr, len)?;
        for p in first..first + pages {
            if self.pages.contains_key(&p) {
                return Err(MemError::Overlap {
                    addr: p * PAGE_SIZE,
                });
            }
        }
        if self.faults.should_inject(hfault::FaultSite::FrameAlloc) {
            return Err(MemError::NoFrames { addr });
        }
        for (i, p) in (first..first + pages).enumerate() {
            // Shared pages alias file bytes; residency starts on first
            // touch (free) and is dropped/restored by eviction.
            let slot = self.alloc_slot(PageEntry::new(
                PageKind::Shared {
                    ino,
                    page: file_page + i as u32,
                },
                prot,
            ));
            self.pages.insert(p, slot);
        }
        self.stats.pages_mapped += pages as u64;
        self.tlb.flush();
        self.bb.invalidate_vpns(first, pages, "map");
        Ok(())
    }

    /// Unmaps `len` bytes at `addr` (all pages must be mapped).
    pub fn unmap(&mut self, addr: u32, len: u32) -> Result<(), MemError> {
        let (first, pages) = Self::check_range(addr, len)?;
        for p in first..first + pages {
            if !self.pages.contains_key(&p) {
                return Err(MemError::NotMapped {
                    addr: p * PAGE_SIZE,
                });
            }
        }
        for p in first..first + pages {
            let slot = self.pages.remove(&p).expect("checked");
            if let Some(entry) = self.entries[slot as usize].take() {
                if entry.is_resident() {
                    self.resident -= 1;
                    self.pool.credit(1);
                }
                if let PageKind::Swapped { slot } = entry.kind {
                    self.pool.slot_unref(slot);
                }
            }
            self.free.push(slot);
        }
        self.stats.pages_unmapped += pages as u64;
        self.tlb.flush();
        self.bb.invalidate_vpns(first, pages, "unmap");
        Ok(())
    }

    /// Changes protection on `len` bytes at `addr`.
    pub fn set_prot(&mut self, addr: u32, len: u32, prot: Prot) -> Result<(), MemError> {
        let (first, pages) = Self::check_range(addr, len)?;
        for p in first..first + pages {
            if !self.pages.contains_key(&p) {
                return Err(MemError::NotMapped {
                    addr: p * PAGE_SIZE,
                });
            }
        }
        for p in first..first + pages {
            let slot = *self.pages.get(&p).expect("checked");
            self.entry_at_slot_mut(slot).prot = prot;
        }
        self.tlb.invalidate_range(first, pages);
        self.bb.invalidate_vpns(first, pages, "mprotect");
        Ok(())
    }

    /// Finds `len` bytes of unmapped space in `[lo, hi)`, page-aligned.
    pub fn find_free(&self, len: u32, lo: u32, hi: u32) -> Option<u32> {
        let pages = len.div_ceil(PAGE_SIZE);
        let mut candidate = vpn(lo.div_ceil(PAGE_SIZE) * PAGE_SIZE);
        let limit = vpn(hi);
        for (&p, _) in self.pages.range(candidate..limit) {
            if p >= candidate + pages {
                break;
            }
            candidate = p + 1;
        }
        if candidate + pages <= limit {
            Some(candidate * PAGE_SIZE)
        } else {
            None
        }
    }

    /// The clone used by `fork`: anonymous frames become shared
    /// copy-on-write; shared-file pages are carried over (both processes
    /// see the single segment copy, per §5 of the paper).
    ///
    /// Both TLBs start cold: the parent's is flushed (its cached
    /// translations predate the COW sharing) and the child's is empty.
    pub fn fork_clone(&mut self) -> AddressSpace {
        self.tlb.flush();
        // COW un-sharing: the parent's decoded blocks predate the
        // sharing, exactly like its cached translations. The child's
        // cache starts cold via `Clone`.
        self.bb.flush(Some("fork"));
        // `Clone` charges the pool for the child's resident mappings and
        // bumps swap-slot refcounts; the child also draws from the same
        // injection stream, so chaos decisions stay a single
        // deterministic sequence across fork.
        let mut child = self.clone();
        child.tlb = Tlb::default();
        child.stats = MemStats::default();
        child
    }

    /// Kernel-side read of guest memory (ignores protection — the kernel
    /// may read anything mapped).
    pub fn read_bytes(
        &self,
        shared: &SharedFs,
        addr: u32,
        len: usize,
    ) -> Result<Vec<u8>, MemError> {
        let mut out = Vec::with_capacity(len);
        let mut a = addr;
        while out.len() < len {
            let entry = self.entry(a).ok_or(MemError::NotMapped { addr: a })?;
            let off = (a % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE as usize) - off).min(len - out.len());
            match &entry.kind {
                // Untouched demand-zero memory reads as zeros without
                // materializing a frame.
                PageKind::Zero => {
                    let end = out.len() + take;
                    out.resize(end, 0u8);
                }
                PageKind::Anon(frame) => out.extend_from_slice(&frame[off..off + take]),
                // Kernel reads of swapped pages go straight to the swap
                // file — a host-level peek, no swap-in.
                PageKind::Swapped { slot } => {
                    let (ino, base) = self
                        .pool
                        .slot_location(*slot)
                        .ok_or(MemError::BadBacking(FsError::BadAddress))?;
                    let bytes = shared.fs.file_bytes(ino).map_err(MemError::BadBacking)?;
                    out.extend_from_slice(&bytes[base + off..base + off + take]);
                }
                PageKind::Shared { ino, page } => {
                    // Kernel peeks honor the poison too — corrupt bytes
                    // never cross into syscall buffers.
                    if shared.fs.is_poisoned(*ino, *page) {
                        return Err(MemError::BadBacking(FsError::CorruptData));
                    }
                    let bytes = shared.fs.file_bytes(*ino).map_err(MemError::BadBacking)?;
                    let start = (*page * PAGE_SIZE) as usize + off;
                    if start + take > bytes.len() {
                        return Err(MemError::BadBacking(FsError::BadAddress));
                    }
                    out.extend_from_slice(&bytes[start..start + take]);
                }
            }
            a = a.wrapping_add(take as u32);
        }
        Ok(out)
    }

    /// Kernel-side write of guest memory (ignores protection).
    pub fn write_bytes(
        &mut self,
        shared: &mut SharedFs,
        addr: u32,
        data: &[u8],
    ) -> Result<(), MemError> {
        let mut written = 0usize;
        let mut a = addr;
        while written < data.len() {
            let slot = *self
                .pages
                .get(&vpn(a))
                .ok_or(MemError::NotMapped { addr: a })?;
            let entry = self.entries[slot as usize].as_mut().expect("live slot");
            let off = (a % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE as usize) - off).min(data.len() - written);
            // A kernel-side poke needs real bytes: materialize
            // non-resident private pages first. Zero pages charge the
            // pool like any first touch; swapped pages refill from
            // their slot without counting a swap-in (this is a host
            // poke, not a guest fault).
            let swap_src = match &entry.kind {
                PageKind::Zero => Some(None),
                PageKind::Swapped { slot } => Some(Some(*slot)),
                _ => None,
            };
            if let Some(swap_slot) = swap_src {
                let mut frame = zero_frame();
                if let Some(swap_slot) = swap_slot {
                    let (ino, base) = self
                        .pool
                        .slot_location(swap_slot)
                        .ok_or(MemError::BadBacking(FsError::BadAddress))?;
                    let bytes = shared.fs.file_bytes(ino).map_err(MemError::BadBacking)?;
                    Arc::make_mut(&mut frame)
                        .copy_from_slice(&bytes[base..base + PAGE_SIZE as usize]);
                    self.pool.slot_unref(swap_slot);
                }
                entry.kind = PageKind::Anon(frame);
                entry.flags |= F_RESIDENT;
                self.resident += 1;
                self.pool.charge(1);
            }
            match &mut entry.kind {
                PageKind::Zero | PageKind::Swapped { .. } => {
                    unreachable!("materialized above")
                }
                PageKind::Anon(frame) => {
                    if Arc::strong_count(frame) > 1 {
                        self.stats.cow_copies += 1;
                    }
                    Arc::make_mut(frame)[off..off + take]
                        .copy_from_slice(&data[written..written + take]);
                }
                PageKind::Shared { ino, page } => {
                    // Sub-page host pokes must not mix fresh bytes into
                    // a corrupt block (see `MemBus::store`).
                    if shared.fs.is_poisoned(*ino, *page) {
                        return Err(MemError::BadBacking(FsError::CorruptData));
                    }
                    // Page-precise epoch stamp: this iteration writes
                    // only within file page `page`, so blocks decoded
                    // from the file's *other* pages stay valid.
                    let page = *page;
                    let bytes = shared
                        .fs
                        .file_bytes_mut_stamped(*ino, page)
                        .map_err(MemError::BadBacking)?;
                    let start = (page * PAGE_SIZE) as usize + off;
                    if start + take > bytes.len() {
                        return Err(MemError::BadBacking(FsError::BadAddress));
                    }
                    bytes[start..start + take].copy_from_slice(&data[written..written + take]);
                }
            }
            written += take;
            a = a.wrapping_add(take as u32);
        }
        // A host poke can patch text in place (the linkers do, for
        // trampolines and GOT slots): drop any decoded blocks covering
        // the written range. Other spaces mapping the same shared pages
        // catch the stamped write epoch at their next block entry.
        if !data.is_empty() {
            let first = vpn(addr);
            let pages = vpn(addr + (data.len() as u32 - 1)) - first + 1;
            self.bb.invalidate_vpns(first, pages, "host-store");
        }
        Ok(())
    }

    /// Reads a NUL-terminated guest string (cap 4096 bytes).
    pub fn read_cstr(&self, shared: &SharedFs, addr: u32) -> Result<String, MemError> {
        let mut out = Vec::new();
        for i in 0..4096u32 {
            let b = self.read_bytes(shared, addr.wrapping_add(i), 1)?;
            if b[0] == 0 {
                return String::from_utf8(out).map_err(|_| {
                    MemError::Fault(Fault::Unmapped {
                        addr,
                        access: Access::Read,
                    })
                });
            }
            out.push(b[0]);
        }
        Err(MemError::NotMapped { addr })
    }
}

/// The [`hvm::Bus`] for one process: its address space plus the shared
/// partition its public pages are windows onto.
pub struct MemBus<'a> {
    /// The process's page table.
    pub aspace: &'a mut AddressSpace,
    /// The shared partition backing public mappings.
    pub shared: &'a mut SharedFs,
    /// Sanitizer hook: observes data accesses that hit shared pages.
    monitor: Option<&'a MonitorRef>,
    /// Who is driving the bus (meaningful only when `monitor` is armed).
    ctx: AccessCtx,
}

impl<'a> MemBus<'a> {
    /// An unobserved bus — the default, zero-overhead configuration.
    pub fn new(aspace: &'a mut AddressSpace, shared: &'a mut SharedFs) -> MemBus<'a> {
        MemBus {
            aspace,
            shared,
            monitor: None,
            ctx: AccessCtx {
                pid: 0,
                pc: 0,
                uid: 0,
                cpu: 0,
            },
        }
    }

    /// An unobserved bus that still knows who is driving it, so
    /// pressure-journal records (swap-ins) carry the right pid even
    /// when no monitor is armed.
    pub fn attributed(
        aspace: &'a mut AddressSpace,
        shared: &'a mut SharedFs,
        ctx: AccessCtx,
    ) -> MemBus<'a> {
        MemBus {
            aspace,
            shared,
            monitor: None,
            ctx,
        }
    }

    /// A bus whose shared-page data accesses are reported to `monitor`,
    /// attributed to `ctx` (the executing process and its current PC).
    pub fn observed(
        aspace: &'a mut AddressSpace,
        shared: &'a mut SharedFs,
        ctx: AccessCtx,
        monitor: &'a MonitorRef,
    ) -> MemBus<'a> {
        MemBus {
            aspace,
            shared,
            monitor: Some(monitor),
            ctx,
        }
    }
}

impl MemBus<'_> {
    /// Translates `addr` — TLB first, page walk + refill on miss — and
    /// checks protection. Returns the slab slot of the page entry.
    ///
    /// The TLB caches only *resident* pages (eviction invalidates the
    /// evicted page's entry; the rest of the cache stays warm), so a
    /// hit needs no residency work; a miss runs [`Self::ensure_resident`]
    /// before the refill. Every successful translation sets the
    /// referenced bit — the second chance the clock hand honors.
    #[inline]
    fn translate(&mut self, addr: u32, access: Access) -> Result<u32, Fault> {
        let vp = vpn(addr);
        let slot = match self.aspace.tlb.lookup(vp) {
            Some(slot) => {
                self.aspace.stats.tlb_hits += 1;
                slot
            }
            None => {
                self.aspace.stats.tlb_misses += 1;
                let slot = *self
                    .aspace
                    .pages
                    .get(&vp)
                    .ok_or(Fault::Unmapped { addr, access })?;
                self.ensure_resident(slot, addr, access)?;
                self.aspace.tlb.fill(vp, slot);
                slot
            }
        };
        let entry = self.aspace.entries[slot as usize]
            .as_mut()
            .expect("TLB and page table agree on live slots");
        if !entry.prot.allows(access) {
            return Err(Fault::Protection { addr, access });
        }
        entry.flags |= F_REFERENCED;
        Ok(slot)
    }

    /// Makes the page at `slot` resident, or surfaces the fault that
    /// will bring it back. First touches (demand-zero, first view of a
    /// shared page) are free — the frame was logically allocated at map
    /// time, and charging them would change every existing workload's
    /// counters. Only *pressure* traffic costs anything: swapped-in
    /// anonymous pages are counted (and billed by the world), and
    /// evicted shared pages bounce through the full user-level fault
    /// protocol via [`Fault::Unmapped`].
    fn ensure_resident(&mut self, slot: u32, addr: u32, access: Access) -> Result<(), Fault> {
        enum Bring {
            FirstTouchZero,
            FirstTouchShared,
            SwapIn(u32),
        }
        let bring = {
            let entry = self.aspace.entries[slot as usize]
                .as_ref()
                .expect("live slot");
            if entry.flags & F_RESIDENT != 0 {
                return Ok(());
            }
            match &entry.kind {
                PageKind::Zero => Bring::FirstTouchZero,
                PageKind::Anon(_) => Bring::FirstTouchShared, // re-flag only
                PageKind::Swapped { slot } => Bring::SwapIn(*slot),
                PageKind::Shared { .. } if entry.flags & F_EVICTED != 0 => {
                    return Err(Fault::Unmapped { addr, access });
                }
                PageKind::Shared { .. } => Bring::FirstTouchShared,
            }
        };
        let frame = match bring {
            Bring::FirstTouchZero => Some(zero_frame()),
            Bring::FirstTouchShared => None,
            Bring::SwapIn(swap_slot) => {
                if self
                    .aspace
                    .faults
                    .should_inject(hfault::FaultSite::SwapRead)
                {
                    return Err(Fault::Unmapped { addr, access });
                }
                let (ino, base) = self
                    .aspace
                    .pool
                    .slot_location(swap_slot)
                    .ok_or(Fault::Unmapped { addr, access })?;
                let bytes = self
                    .shared
                    .fs
                    .file_bytes(ino)
                    .map_err(|_| Fault::Unmapped { addr, access })?;
                let mut frame = zero_frame();
                Arc::make_mut(&mut frame).copy_from_slice(&bytes[base..base + PAGE_SIZE as usize]);
                self.aspace.pool.slot_unref(swap_slot);
                self.aspace
                    .pool
                    .count_swap_in(self.ctx.pid, addr & !(PAGE_SIZE - 1));
                Some(frame)
            }
        };
        let entry = self.aspace.entries[slot as usize]
            .as_mut()
            .expect("live slot");
        if let Some(frame) = frame {
            entry.kind = PageKind::Anon(frame);
        }
        entry.flags |= F_RESIDENT;
        self.aspace.resident += 1;
        self.aspace.pool.charge(1);
        Ok(())
    }

    /// Read path. Never calls `Arc::make_mut`, so a post-fork read leaves
    /// the copy-on-write sharing (and the cow counters) untouched.
    fn load(&mut self, addr: u32, len: usize, access: Access) -> Result<u32, Fault> {
        let slot = self.translate(addr, access)?;
        let entry = self.aspace.entries[slot as usize]
            .as_ref()
            .expect("live slot");
        let off = (addr % PAGE_SIZE) as usize;
        debug_assert!(off + len <= PAGE_SIZE as usize, "CPU enforces alignment");
        let mut shared_hit: Option<(Ino, u32)> = None;
        let bytes: &[u8] = match &entry.kind {
            PageKind::Zero | PageKind::Swapped { .. } => {
                unreachable!("translate made the page resident")
            }
            PageKind::Anon(frame) => &frame[off..off + len],
            PageKind::Shared { ino, page } => {
                // Verified read: a page whose backing block is known
                // uncorrectably corrupt must never hand bytes to a
                // guest — SIGBUS-analog, kills only this process.
                if self.shared.fs.is_poisoned(*ino, *page) {
                    return Err(Fault::Eio { addr, access });
                }
                let start = (*page * PAGE_SIZE) as usize + off;
                let file = self
                    .shared
                    .fs
                    .file_bytes(*ino)
                    .map_err(|_| Fault::Unmapped { addr, access })?;
                if start + len > file.len() {
                    return Err(Fault::Unmapped { addr, access });
                }
                shared_hit = Some((*ino, start as u32));
                &file[start..start + len]
            }
        };
        let mut v = 0u32;
        for i in (0..len).rev() {
            v = (v << 8) | bytes[i] as u32;
        }
        if let (Some(monitor), Some((ino, foff)), Access::Read) = (self.monitor, shared_hit, access)
        {
            // invariant: the monitor mutex is never held across a bus
            // access, so it can only be poisoned by a panic in flight.
            monitor
                .lock()
                .unwrap()
                .shared_read(self.ctx, ino, foff, len as u32);
        }
        Ok(v)
    }

    /// Write path: copy-on-write for shared anonymous frames, direct
    /// file-byte stores for shared mappings.
    fn store(&mut self, addr: u32, data: &[u8]) -> Result<(), Fault> {
        let access = Access::Write;
        let slot = self.translate(addr, access)?;
        let entry = self.aspace.entries[slot as usize]
            .as_mut()
            .expect("live slot");
        let off = (addr % PAGE_SIZE) as usize;
        debug_assert!(
            off + data.len() <= PAGE_SIZE as usize,
            "CPU enforces alignment"
        );
        let can_exec = entry.prot.can_exec();
        let mut shared_dst: Option<(Ino, u32)> = None;
        match &mut entry.kind {
            PageKind::Zero | PageKind::Swapped { .. } => {
                unreachable!("translate made the page resident")
            }
            PageKind::Anon(frame) => {
                if Arc::strong_count(frame) > 1 {
                    self.aspace.stats.cow_copies += 1;
                }
                Arc::make_mut(frame)[off..off + data.len()].copy_from_slice(data);
            }
            PageKind::Shared { ino, page } => {
                // Verified access on the store side too: sub-page
                // stores to a poisoned page would mix new bytes into
                // corrupt ones, so they raise the same SIGBUS-analog.
                // (File-level `write_at` covering the whole page is the
                // sanctioned way to replace a poisoned block.)
                if self.shared.fs.is_poisoned(*ino, *page) {
                    return Err(Fault::Eio { addr, access });
                }
                // The store lands in the backing file directly (shared
                // pages alias file bytes), but the page is now "dirty"
                // for eviction purposes: dropping it takes a simulated
                // writeback first.
                entry.flags |= F_DIRTY;
                let ino = *ino;
                let fpage = *page;
                shared_dst = Some((ino, fpage));
                let start = (fpage * PAGE_SIZE) as usize + off;
                // Protection-transition check: would the file's *current*
                // sfs mode grant this uid write access? (The page mapping
                // may predate a chmod.) Only consulted when armed; the
                // query is `&self` and touches no cost-model counters.
                let mode_allows = match self.monitor {
                    Some(_) => self
                        .shared
                        .fs
                        .access(ino, self.ctx.uid, true)
                        .unwrap_or(true),
                    None => true,
                };
                // Page-precise write-epoch stamp: other spaces with
                // blocks decoded from this file page notice at their
                // next block entry; blocks from its other pages live on.
                let file = self
                    .shared
                    .fs
                    .file_bytes_mut_stamped(ino, fpage)
                    .map_err(|_| Fault::Unmapped { addr, access })?;
                if start + data.len() > file.len() {
                    return Err(Fault::Unmapped { addr, access });
                }
                file[start..start + data.len()].copy_from_slice(data);
                if let Some(monitor) = self.monitor {
                    // invariant: see `load` — the monitor mutex cannot
                    // be poisoned.
                    monitor.lock().unwrap().shared_write(
                        self.ctx,
                        ino,
                        start as u32,
                        data.len() as u32,
                        mode_allows,
                    );
                }
            }
        }
        // W^X-style dirty hook: a store that can alter executable bytes
        // (the page is executable, or it aliases a shared file page some
        // cached block was decoded from) drops the affected blocks and
        // moves the store epoch, so a block in flight aborts before its
        // next instruction (`Cpu::run_block` re-checks per instruction).
        if self.aspace.bb.enabled()
            && (can_exec
                || shared_dst.is_some_and(|(ino, fpage)| self.aspace.bb.has_src_page(ino, fpage)))
        {
            self.aspace.bb.bump_store_epoch();
            self.aspace.bb.invalidate_page(vpn(addr), "store-exec");
            if let Some((ino, fpage)) = shared_dst {
                self.aspace.bb.invalidate_src_page(ino, fpage, "store-exec");
            }
        }
        Ok(())
    }

    /// Looks up — or decodes and caches — the basic block entered at
    /// `pc`. Returns `None` (caller falls back to [`hvm::Cpu::step`]) when
    /// the cache is disabled, the page is non-resident or non-executable
    /// (the slow path must surface the exact fault or do the residency
    /// work), or the first word does not decode.
    ///
    /// The build peeks at resident bytes without side effects: no TLB
    /// traffic, no reference bits, no chaos decisions, no fs stats —
    /// those all happen (identically to the slow path) when the block
    /// executes through [`hvm::Bus::fetch_check`].
    pub fn bb_block(&mut self, pc: u32) -> Option<Arc<[Instr]>> {
        let MemBus { aspace, shared, .. } = self;
        if !aspace.bb.enabled() || !pc.is_multiple_of(4) {
            return None;
        }
        let fs = &shared.fs;
        let fs_stamp = fs.content_stamp();
        if let Some(code) = aspace
            .bb
            .lookup(pc, fs_stamp, |ino, page| fs.write_epoch(ino, page))
        {
            return Some(code);
        }
        let vp = vpn(pc);
        let slot = *aspace.pages.get(&vp)?;
        let entry = aspace.entries[slot as usize].as_ref()?;
        if entry.flags & F_RESIDENT == 0 || !entry.prot.can_exec() {
            return None;
        }
        let off = (pc % PAGE_SIZE) as usize;
        let (bytes, src): (&[u8], Option<(u32, u32, u64)>) = match &entry.kind {
            PageKind::Anon(frame) => (&frame[off..], None),
            PageKind::Shared { ino, page } => {
                // Poisoned backing block: decline to decode — the slow
                // path surfaces the precise `Eio` fault.
                if fs.is_poisoned(*ino, *page) {
                    return None;
                }
                let file = fs.file_bytes(*ino).ok()?;
                let start = (*page * PAGE_SIZE) as usize + off;
                let end = ((*page + 1) * PAGE_SIZE) as usize;
                if start >= file.len() {
                    return None;
                }
                (
                    &file[start..end.min(file.len())],
                    Some((*ino, *page, fs.write_epoch(*ino, *page))),
                )
            }
            PageKind::Zero | PageKind::Swapped { .. } => return None,
        };
        let code = hvm::bbcache::decode_run(bytes);
        if code.is_empty() {
            return None;
        }
        let code: Arc<[Instr]> = code.into();
        aspace.bb.insert(pc, code.clone(), src, fs_stamp);
        Some(code)
    }

    /// The block cache's mutation stamp — see
    /// [`hvm::bbcache::BbCache::mutation_stamp`]. A dispatcher may
    /// reuse a previous [`MemBus::bb_block`] result without re-entering
    /// the cache strictly while this stamp stands still. Mid-slice,
    /// only the running process mutates its own address space, and
    /// every path that could stale a cached block (stores to source
    /// pages, map changes, evictions, flushes) moves the stamp; cross-
    /// process mutations happen between slices, outside any memo's
    /// lifetime.
    pub fn bb_stamp(&self) -> u64 {
        self.aspace.bb.mutation_stamp()
    }

    /// Accounts a memoized block dispatch as a cache hit.
    pub fn bb_count_hit(&mut self) {
        self.aspace.bb.count_hit();
    }
}

impl Bus for MemBus<'_> {
    fn fetch(&mut self, addr: u32) -> Result<u32, Fault> {
        self.load(addr, 4, Access::Exec)
    }
    /// Every side effect of `fetch` except reading the bytes out: the
    /// translation (TLB hit/miss counters, page walk, residency faults,
    /// chaos decisions, reference bit) and the protection check. The
    /// bytes themselves were validated when the block was built, and a
    /// backing-file truncation since then moves the write epoch, which
    /// evicts the block before it can re-enter. Also refreshes the
    /// access context's PC so monitor attribution (hsan race reports)
    /// stays per-instruction inside a block.
    fn fetch_check(&mut self, addr: u32) -> Result<(), Fault> {
        self.ctx.pc = addr;
        self.translate(addr, Access::Exec).map(|_| ())
    }
    fn text_epoch(&mut self) -> u64 {
        self.aspace.bb.store_epoch()
    }
    fn load8(&mut self, addr: u32) -> Result<u8, Fault> {
        Ok(self.load(addr, 1, Access::Read)? as u8)
    }
    fn load16(&mut self, addr: u32) -> Result<u16, Fault> {
        Ok(self.load(addr, 2, Access::Read)? as u16)
    }
    fn load32(&mut self, addr: u32) -> Result<u32, Fault> {
        self.load(addr, 4, Access::Read)
    }
    fn store8(&mut self, addr: u32, val: u8) -> Result<(), Fault> {
        self.store(addr, &[val])
    }
    fn store16(&mut self, addr: u32, val: u16) -> Result<(), Fault> {
        self.store(addr, &val.to_le_bytes())
    }
    fn store32(&mut self, addr: u32, val: u32) -> Result<(), Fault> {
        self.store(addr, &val.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsfs::SLOT_SIZE;

    const P: u32 = PAGE_SIZE;

    #[test]
    fn map_read_write_anon() {
        let mut a = AddressSpace::new();
        let mut s = SharedFs::new();
        a.map_anon(0x1000, 2 * P, Prot::RW).unwrap();
        a.write_bytes(&mut s, 0x1ffe, &[1, 2, 3, 4]).unwrap(); // spans pages
        assert_eq!(a.read_bytes(&s, 0x1ffe, 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn overlap_rejected_atomically() {
        let mut a = AddressSpace::new();
        a.map_anon(0x2000, P, Prot::RW).unwrap();
        assert!(matches!(
            a.map_anon(0x1000, 3 * P, Prot::RW),
            Err(MemError::Overlap { .. })
        ));
        // Nothing from the failed call may remain.
        assert_eq!(a.page_count(), 1);
    }

    #[test]
    fn unaligned_rejected() {
        let mut a = AddressSpace::new();
        assert!(matches!(
            a.map_anon(0x1004, P, Prot::RW),
            Err(MemError::Unaligned { .. })
        ));
        assert!(matches!(
            a.map_anon(0x1000, 0, Prot::RW),
            Err(MemError::Unaligned { .. })
        ));
    }

    #[test]
    fn bus_protection_checks() {
        let mut a = AddressSpace::new();
        let mut s = SharedFs::new();
        a.map_anon(0x1000, P, Prot::R).unwrap();
        a.map_anon(0x2000, P, Prot::NONE).unwrap();
        let mut bus = MemBus::new(&mut a, &mut s);
        assert!(bus.load32(0x1000).is_ok());
        assert_eq!(
            bus.store32(0x1000, 1),
            Err(Fault::Protection {
                addr: 0x1000,
                access: Access::Write
            })
        );
        assert_eq!(
            bus.load32(0x2000),
            Err(Fault::Protection {
                addr: 0x2000,
                access: Access::Read
            })
        );
        assert_eq!(
            bus.fetch(0x1000),
            Err(Fault::Protection {
                addr: 0x1000,
                access: Access::Exec
            })
        );
        assert_eq!(
            bus.load32(0x9000),
            Err(Fault::Unmapped {
                addr: 0x9000,
                access: Access::Read
            })
        );
    }

    #[test]
    fn shared_mapping_aliases_file_bytes() {
        let mut a = AddressSpace::new();
        let mut b = AddressSpace::new();
        let mut s = SharedFs::new();
        let ino = s.create_file("/seg", 0o666, 0).unwrap();
        s.fs.truncate(ino, (2 * P) as u64).unwrap();
        let base = SharedFs::addr_of_ino(ino);
        a.map_shared(base, 2 * P, Prot::RW, ino, 0).unwrap();
        b.map_shared(base, 2 * P, Prot::RW, ino, 0).unwrap();
        {
            let mut bus = MemBus::new(&mut a, &mut s);
            bus.store32(base + 8, 0xCAFE_F00D).unwrap();
        }
        // Process B sees A's store instantly (genuine write sharing).
        let mut bus_b = MemBus::new(&mut b, &mut s);
        assert_eq!(bus_b.load32(base + 8).unwrap(), 0xCAFE_F00D);
        // And the bytes are the file's bytes.
        assert_eq!(
            &s.fs.file_bytes(ino).unwrap()[8..12],
            &0xCAFE_F00Du32.to_le_bytes()
        );
    }

    #[test]
    fn shared_mapping_beyond_file_faults() {
        let mut a = AddressSpace::new();
        let mut s = SharedFs::new();
        let ino = s.create_file("/small", 0o666, 0).unwrap();
        s.fs.truncate(ino, P as u64).unwrap();
        let base = SharedFs::addr_of_ino(ino);
        a.map_shared(base, 2 * P, Prot::RW, ino, 0).unwrap();
        let mut bus = MemBus::new(&mut a, &mut s);
        assert!(bus.load32(base).is_ok());
        assert!(bus.load32(base + P).is_err());
    }

    #[test]
    fn fork_clone_is_cow() {
        let mut parent = AddressSpace::new();
        let mut s = SharedFs::new();
        parent.map_anon(0x1000, P, Prot::RW).unwrap();
        parent.write_bytes(&mut s, 0x1000, b"parent data").unwrap();
        let mut child = parent.fork_clone();
        // Child sees parent's data.
        assert_eq!(child.read_bytes(&s, 0x1000, 6).unwrap(), b"parent");
        // Child write triggers a copy; parent unaffected.
        child.write_bytes(&mut s, 0x1000, b"child!").unwrap();
        assert_eq!(child.stats.cow_copies, 1);
        assert_eq!(parent.read_bytes(&s, 0x1000, 6).unwrap(), b"parent");
        // Second child write copies nothing further.
        child.write_bytes(&mut s, 0x1004, b"x").unwrap();
        assert_eq!(child.stats.cow_copies, 1);
    }

    #[test]
    fn fork_shares_public_pages() {
        let mut parent = AddressSpace::new();
        let mut s = SharedFs::new();
        let ino = s.create_file("/pub", 0o666, 0).unwrap();
        s.fs.truncate(ino, P as u64).unwrap();
        let base = SharedFs::addr_of_ino(ino);
        parent.map_shared(base, P, Prot::RW, ino, 0).unwrap();
        let mut child = parent.fork_clone();
        child.write_bytes(&mut s, base, b"from child").unwrap();
        assert_eq!(parent.read_bytes(&s, base, 10).unwrap(), b"from child");
    }

    #[test]
    fn set_prot_enables_lazy_link_trap() {
        let mut a = AddressSpace::new();
        let mut s = SharedFs::new();
        a.map_anon(0x1000, P, Prot::NONE).unwrap();
        {
            let mut bus = MemBus::new(&mut a, &mut s);
            assert!(matches!(bus.load32(0x1000), Err(Fault::Protection { .. })));
        }
        a.set_prot(0x1000, P, Prot::RWX).unwrap();
        let mut bus = MemBus::new(&mut a, &mut s);
        assert!(bus.load32(0x1000).is_ok());
        assert!(bus.fetch(0x1000).is_ok());
    }

    #[test]
    fn find_free_skips_mappings() {
        let mut a = AddressSpace::new();
        a.map_anon(0x2000, P, Prot::RW).unwrap();
        a.map_anon(0x4000, P, Prot::RW).unwrap();
        assert_eq!(a.find_free(P, 0x1000, 0x10000), Some(0x1000));
        assert_eq!(a.find_free(2 * P, 0x2000, 0x10000), Some(0x5000));
        assert_eq!(a.find_free(P, 0x2000, 0x3000), None);
    }

    #[test]
    fn unmap_requires_full_coverage() {
        let mut a = AddressSpace::new();
        a.map_anon(0x1000, P, Prot::RW).unwrap();
        assert!(matches!(
            a.unmap(0x1000, 2 * P),
            Err(MemError::NotMapped { .. })
        ));
        a.unmap(0x1000, P).unwrap();
        assert_eq!(a.page_count(), 0);
    }

    #[test]
    fn read_cstr_and_bounds() {
        let mut a = AddressSpace::new();
        let mut s = SharedFs::new();
        a.map_anon(0x1000, P, Prot::RW).unwrap();
        a.write_bytes(&mut s, 0x1000, b"/shared/db\0").unwrap();
        assert_eq!(a.read_cstr(&s, 0x1000).unwrap(), "/shared/db");
        assert!(a.read_cstr(&s, 0x9000).is_err());
    }

    #[test]
    fn tlb_warm_second_access_hits() {
        let mut a = AddressSpace::new();
        let mut s = SharedFs::new();
        a.map_anon(0x1000, P, Prot::RW).unwrap();
        assert!(!a.tlb_cached(0x1000));
        let mut bus = MemBus::new(&mut a, &mut s);
        bus.load32(0x1000).unwrap(); // cold: page walk + fill
        bus.load32(0x1004).unwrap(); // warm: same page, served by TLB
        assert_eq!(a.stats.tlb_misses, 1);
        assert_eq!(a.stats.tlb_hits, 1);
        assert!(a.tlb_cached(0x1000));
    }

    #[test]
    fn tlb_invalidated_by_unmap() {
        let mut a = AddressSpace::new();
        let mut s = SharedFs::new();
        a.map_anon(0x1000, P, Prot::RW).unwrap();
        {
            let mut bus = MemBus::new(&mut a, &mut s);
            bus.load32(0x1000).unwrap();
        }
        assert!(a.tlb_cached(0x1000));
        a.unmap(0x1000, P).unwrap();
        assert!(!a.tlb_cached(0x1000));
        let mut bus = MemBus::new(&mut a, &mut s);
        assert_eq!(
            bus.load32(0x1000),
            Err(Fault::Unmapped {
                addr: 0x1000,
                access: Access::Read
            })
        );
    }

    #[test]
    fn tlb_invalidated_by_set_prot() {
        let mut a = AddressSpace::new();
        let mut s = SharedFs::new();
        a.map_anon(0x1000, P, Prot::RW).unwrap();
        {
            let mut bus = MemBus::new(&mut a, &mut s);
            bus.load32(0x1000).unwrap();
        }
        assert!(a.tlb_cached(0x1000));
        a.set_prot(0x1000, P, Prot::NONE).unwrap();
        assert!(!a.tlb_cached(0x1000));
        let mut bus = MemBus::new(&mut a, &mut s);
        // The new protection takes effect immediately — no stale grant.
        assert_eq!(
            bus.load32(0x1000),
            Err(Fault::Protection {
                addr: 0x1000,
                access: Access::Read
            })
        );
    }

    #[test]
    fn tlb_invalidation_is_page_granular() {
        // mprotect of one page must not flush its neighbors: warm
        // translations outside the changed range survive, so the next
        // access to them is a TLB hit, not a page-table walk.
        let mut a = AddressSpace::new();
        let mut s = SharedFs::new();
        a.map_anon(0x1000, 3 * P, Prot::RW).unwrap();
        {
            let mut bus = MemBus::new(&mut a, &mut s);
            for vpn in 1..4 {
                bus.load32(vpn * P).unwrap();
            }
        }
        a.set_prot(0x2000, P, Prot::NONE).unwrap();
        assert!(a.tlb_cached(0x1000), "page below the range stays warm");
        assert!(!a.tlb_cached(0x2000), "the changed page is invalidated");
        assert!(a.tlb_cached(0x3000), "page above the range stays warm");
        let misses_before = a.stats.tlb_misses;
        {
            let mut bus = MemBus::new(&mut a, &mut s);
            bus.load32(0x1000).unwrap();
            bus.load32(0x3000).unwrap();
        }
        assert_eq!(a.stats.tlb_misses, misses_before, "no re-walk of neighbors");

        // Eviction likewise drops only the evicted page's entry.
        let pool = FramePool::new(64, 16);
        let mut a = AddressSpace::new();
        a.attach_pool(&pool);
        a.map_anon(0x1000, 2 * P, Prot::RW).unwrap();
        {
            let mut bus = MemBus::new(&mut a, &mut s);
            bus.store32(0x1000, 7).unwrap();
            bus.store32(0x2000, 9).unwrap();
        }
        assert_eq!(
            a.evict_page(1, 1, &mut s),
            EvictOutcome::Evicted,
            "anon page swaps out"
        );
        assert!(!a.tlb_cached(0x1000), "evicted page leaves the TLB");
        assert!(a.tlb_cached(0x2000), "resident neighbor stays cached");
    }

    #[test]
    fn tlb_cold_on_both_sides_of_fork() {
        let mut parent = AddressSpace::new();
        let mut s = SharedFs::new();
        parent.map_anon(0x1000, P, Prot::RW).unwrap();
        {
            let mut bus = MemBus::new(&mut parent, &mut s);
            bus.store32(0x1000, 0xAA55).unwrap();
        }
        assert!(parent.tlb_cached(0x1000));
        let mut child = parent.fork_clone();
        // COW invalidation: neither side may reuse pre-fork translations.
        assert!(!parent.tlb_cached(0x1000));
        assert!(!child.tlb_cached(0x1000));
        // A warm-TLB child write still copies, leaving the parent intact.
        {
            let mut bus = MemBus::new(&mut child, &mut s);
            bus.load32(0x1000).unwrap();
            bus.store32(0x1000, 0x1234).unwrap();
        }
        assert_eq!(child.stats.cow_copies, 1);
        let mut bus = MemBus::new(&mut parent, &mut s);
        assert_eq!(bus.load32(0x1000).unwrap(), 0xAA55);
    }

    #[test]
    fn tlb_slot_reuse_after_remap_translates_correctly() {
        // Unmap frees a slab slot; a new mapping reuses it. The flush on
        // both operations must keep the old vpn from reaching the new
        // page's entry.
        let mut a = AddressSpace::new();
        let mut s = SharedFs::new();
        a.map_anon(0x1000, P, Prot::RW).unwrap();
        {
            let mut bus = MemBus::new(&mut a, &mut s);
            bus.store32(0x1000, 7).unwrap();
        }
        a.unmap(0x1000, P).unwrap();
        a.map_anon(0x2000, P, Prot::RW).unwrap();
        let mut bus = MemBus::new(&mut a, &mut s);
        assert_eq!(bus.load32(0x2000).unwrap(), 0); // fresh zero frame
        assert!(bus.load32(0x1000).is_err());
    }

    #[test]
    fn whole_slot_mapping_works() {
        // A full 1 MB module segment maps and is addressable end to end.
        let mut a = AddressSpace::new();
        let mut s = SharedFs::new();
        let ino = s.create_file("/big", 0o666, 0).unwrap();
        s.fs.truncate(ino, SLOT_SIZE as u64).unwrap();
        let base = SharedFs::addr_of_ino(ino);
        a.map_shared(base, SLOT_SIZE, Prot::RW, ino, 0).unwrap();
        let mut bus = MemBus::new(&mut a, &mut s);
        bus.store32(base + SLOT_SIZE - 4, 7).unwrap();
        assert_eq!(bus.load32(base + SLOT_SIZE - 4).unwrap(), 7);
    }
}
