//! Property tests for the address-space allocator and copy-on-write —
//! the memory substrate under every mapping the linkers create.

use hkernel::{AddressSpace, Prot};
use hsfs::{SharedFs, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    /// find_free never proposes a range overlapping an existing mapping,
    /// and mapping at its result always succeeds.
    #[test]
    fn find_free_is_sound(
        sizes in proptest::collection::vec(1u32..5, 1..20),
    ) {
        let mut a = AddressSpace::new();
        let lo = 0x2000_0000;
        let hi = 0x2100_0000;
        for pages in sizes {
            let len = pages * PAGE_SIZE;
            if let Some(base) = a.find_free(len, lo, hi) {
                prop_assert!(base >= lo && base + len <= hi);
                prop_assert!(a.map_anon(base, len, Prot::RW).is_ok());
            }
        }
    }

    /// After fork, parent and child diverge exactly where each writes;
    /// unwritten pages stay identical; copy counts equal the number of
    /// distinct pages the child dirtied.
    #[test]
    fn cow_divergence_is_page_precise(
        writes in proptest::collection::vec((0u32..8, any::<u8>()), 1..24),
    ) {
        let mut shared = SharedFs::new();
        let mut parent = AddressSpace::new();
        let base = 0x1000_0000;
        parent.map_anon(base, 8 * PAGE_SIZE, Prot::RW).unwrap();
        for p in 0..8u32 {
            parent
                .write_bytes(&mut shared, base + p * PAGE_SIZE, &[p as u8; 16])
                .unwrap();
        }
        let mut child = parent.fork_clone();
        let mut dirtied = std::collections::HashSet::new();
        for (page, val) in writes {
            child
                .write_bytes(&mut shared, base + page * PAGE_SIZE + 64, &[val])
                .unwrap();
            dirtied.insert(page);
        }
        prop_assert_eq!(child.stats.cow_copies as usize, dirtied.len());
        for p in 0..8u32 {
            let addr = base + p * PAGE_SIZE;
            let parent_bytes = parent.read_bytes(&shared, addr, 16).unwrap();
            prop_assert_eq!(parent_bytes, vec![p as u8; 16], "parent page {} intact", p);
            if !dirtied.contains(&p) {
                let child_bytes = child.read_bytes(&shared, addr, 16).unwrap();
                prop_assert_eq!(child_bytes, vec![p as u8; 16], "clean page {} shared", p);
            }
        }
    }

    /// map / unmap round-trips leave the space empty, whatever the order.
    #[test]
    fn map_unmap_balanced(
        slots in proptest::collection::vec(0u32..16, 1..12),
    ) {
        let mut a = AddressSpace::new();
        let base = 0x1000_0000;
        let mut mapped = std::collections::HashSet::new();
        for s in &slots {
            let addr = base + s * PAGE_SIZE;
            if mapped.insert(*s) {
                prop_assert!(a.map_anon(addr, PAGE_SIZE, Prot::RW).is_ok());
            } else {
                // Second attempt must be rejected as an overlap.
                prop_assert!(a.map_anon(addr, PAGE_SIZE, Prot::RW).is_err());
            }
        }
        for s in &mapped {
            prop_assert!(a.unmap(base + s * PAGE_SIZE, PAGE_SIZE).is_ok());
        }
        prop_assert_eq!(a.page_count(), 0);
    }
}
