//! A dependency-free stand-in for the `criterion` benchmark harness,
//! implementing exactly the subset of its API this workspace's benches
//! use. The build environment has no access to a crates.io registry, so
//! the real crate cannot be vendored; this shim keeps `cargo bench`
//! working offline.
//!
//! Differences from real criterion, by design: no statistical analysis,
//! plots, or saved baselines. Each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints the per-iteration mean and
//! min/max across samples.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Iterations per timed sample (after calibration bounds it below).
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Prevents the optimizer from discarding a benchmark result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to every `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmarks a closure parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report already printed per-benchmark).
    pub fn finish(&mut self) {}
}

/// A `name/parameter` benchmark identifier.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
            param: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Collects timing for one benchmark; handed to the user closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh un-timed `setup` value per iteration.
    pub fn iter_with_setup<S, R, SF, F>(&mut self, mut setup: SF, mut routine: F)
    where
        SF: FnMut() -> S,
        F: FnMut(S) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// True when `BENCH_SIM_ONLY` asks to skip wall-clock measurement
/// entirely (the deterministic simulated-time tables are printed by the
/// bench binaries themselves; `scripts/bench_compare.sh` sets this so
/// the regression gate is fast and machine-independent).
fn sim_only() -> bool {
    matches!(std::env::var("BENCH_SIM_ONLY"), Ok(v) if !v.is_empty() && v != "0")
}

/// Calibrates an iteration count, then runs `samples` timed samples and
/// prints mean and min/max per-iteration times.
fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    if sim_only() {
        eprintln!("{label:<44} skipped (BENCH_SIM_ONLY)");
        return;
    }
    // One calibration pass: a single iteration, timed.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0_f64, f64::max);
    eprintln!(
        "{label:<44} {:>12}  [{} .. {}]  ({iters} iters x {samples} samples)",
        fmt_seconds(mean),
        fmt_seconds(min),
        fmt_seconds(max),
    );
    append_wall_row(label, mean);
}

/// When `BENCH_WALL_OUT` names a file, appends one JSONL row per
/// benchmark — `{"bench":"<id>","wall_ns":<mean>}` — so CI's wall-clock
/// lane can collect machine-readable results without parsing stderr.
fn append_wall_row(label: &str, mean_secs: f64) {
    let Ok(path) = std::env::var("BENCH_WALL_OUT") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let row = format!(
        "{{\"bench\":\"{escaped}\",\"wall_ns\":{:.0}}}\n",
        mean_secs * 1e9
    );
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(row.as_bytes());
    }
}

/// Human-scaled time formatting (ns/µs/ms/s).
fn fmt_seconds(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Declares a benchmark group: `criterion_group!(benches, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the named groups: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_function("count", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter_with_setup(
                || vec![0u8; n as usize],
                |v| {
                    ran += 1;
                    v.len()
                },
            )
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("touch", 1000).to_string(), "touch/1000");
    }
}
