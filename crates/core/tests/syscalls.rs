//! Guest-level coverage for the remaining file syscalls (lseek whence
//! modes, rename, readdir, symlink) — driven through real programs, not
//! kernel internals.

use hemlock::{ShareClass, World, WorldExit};

fn run(world: &mut World, src: &str) -> i32 {
    world.install_template("/src/main.o", src).unwrap();
    let exe = world
        .link("/bin/t", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(
        world.run(200_000),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    world.exit_code(pid).unwrap()
}

#[test]
fn lseek_end_relative() {
    let mut world = World::new();
    world
        .kernel
        .vfs
        .write_file("/data", b"0123456789", 0o666, 1)
        .unwrap();
    // open; lseek(fd, -4, END); read 4 → "6789"; exit(buf[0]).
    let code = run(
        &mut world,
        r#"
        .module main
        .text
        .globl main
        main:   li   v0, 4          ; open(path, rdonly)
                la   a0, path
                li   a1, 0
                syscall
                or   r16, v0, r0
                li   v0, 28         ; lseek(fd, -4, END)
                or   a0, r16, r0
                li   a1, -4
                li   a2, 2
                syscall
                li   v0, 3          ; read(fd, buf, 4)
                or   a0, r16, r0
                la   a1, buf
                li   a2, 4
                syscall
                la   r8, buf
                lb   a0, 0(r8)
                li   v0, 1
                syscall
        .data
        path:   .asciiz "/data"
        buf:    .space 8
        "#,
    );
    assert_eq!(code, b'6' as i32);
}

#[test]
fn rename_moves_file() {
    let mut world = World::new();
    world
        .kernel
        .vfs
        .write_file("/before", b"X", 0o666, 1)
        .unwrap();
    let code = run(
        &mut world,
        r#"
        .module main
        .text
        .globl main
        main:   li   v0, 29         ; rename(old, new)
                la   a0, old
                la   a1, new
                syscall
                or   a0, v0, r0
                li   v0, 1
                syscall
        .data
        old:    .asciiz "/before"
        new:    .asciiz "/after"
        "#,
    );
    assert_eq!(code, 0);
    assert!(world.kernel.vfs.resolve("/before").is_err());
    assert_eq!(world.kernel.vfs.read_all("/after").unwrap(), b"X");
}

#[test]
fn readdir_enumerates_then_ends() {
    let mut world = World::new();
    world.kernel.vfs.mkdir_all("/d", 0o777, 0).unwrap();
    for n in ["alpha", "beta"] {
        world
            .kernel
            .vfs
            .create_file(&format!("/d/{n}"), 0o666, 1)
            .unwrap();
    }
    // Count entries via readdir(fd, i, buf, len) until it returns 0.
    let code = run(
        &mut world,
        r#"
        .module main
        .text
        .globl main
        main:   li   v0, 4          ; open("/d", rdonly)
                la   a0, path
                li   a1, 0
                syscall
                or   r16, v0, r0
                li   r17, 0         ; index
        loop:   li   v0, 30         ; readdir(fd, idx, buf, 32)
                or   a0, r16, r0
                or   a1, r17, r0
                la   a2, buf
                li   a3, 32
                syscall
                blez v0, done
                addi r17, r17, 1
                b    loop
        done:   or   a0, r17, r0
                li   v0, 1
                syscall
        .data
        path:   .asciiz "/d"
        buf:    .space 32
        "#,
    );
    assert_eq!(code, 2);
}

#[test]
fn symlink_syscall_then_open_through_it() {
    let mut world = World::new();
    world
        .kernel
        .vfs
        .write_file("/real", b"R", 0o666, 1)
        .unwrap();
    let code = run(
        &mut world,
        r#"
        .module main
        .text
        .globl main
        main:   li   v0, 19         ; symlink(target, link)
                la   a0, target
                la   a1, link
                syscall
                li   v0, 4          ; open(link, rdonly)
                la   a0, link
                li   a1, 0
                syscall
                or   a0, v0, r0
                li   v0, 3          ; read(fd, buf, 1)
                la   a1, buf
                li   a2, 1
                syscall
                la   r8, buf
                lb   a0, 0(r8)
                li   v0, 1
                syscall
        .data
        target: .asciiz "/real"
        link:   .asciiz "/alias"
        buf:    .space 4
        "#,
    );
    assert_eq!(code, b'R' as i32);
}

#[test]
fn unknown_syscall_kills_only_the_caller() {
    // A bogus syscall number is not repairable and must not be silently
    // absorbed: the issuing process dies with a typed `BadSyscall` fault
    // (see `syscall.rs` dispatch), and *only* that process.
    let mut world = World::new();
    world
        .install_template(
            "/src/bad.o",
            ".module bad\n.text\n.globl main\nmain: li v0, 99\nsyscall\nli a0, 7\nli v0, 1\nsyscall\n",
        )
        .unwrap();
    world
        .install_template(
            "/src/good.o",
            ".module good\n.text\n.globl main\nmain: li a0, 11\nli v0, 1\nsyscall\n",
        )
        .unwrap();
    let bad = world
        .link("/bin/bad", &[("/src/bad.o", ShareClass::StaticPrivate)])
        .unwrap();
    let good = world
        .link("/bin/good", &[("/src/good.o", ShareClass::StaticPrivate)])
        .unwrap();
    let bad_pid = world.spawn(&bad).unwrap();
    let good_pid = world.spawn(&good).unwrap();
    assert_eq!(world.run(200_000), WorldExit::AllExited);
    // The offender was killed before reaching its exit(7)...
    assert_eq!(world.exit_code(bad_pid), Some(-1));
    // ...the innocent bystander was untouched...
    assert_eq!(world.exit_code(good_pid), Some(11));
    // ...and the kill was diagnosed with the syscall number.
    assert!(
        world
            .log
            .iter()
            .any(|l| l.contains("bad syscall number 99")),
        "log: {:?}",
        world.log
    );
}
