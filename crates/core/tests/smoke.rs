//! End-to-end smoke tests for the full Hemlock stack.

use hemlock::{ShareClass, World, WorldExit};

const COUNTER: &str = r#"
.module counter
.text
.globl bump
bump:   la   r8, count
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        or   v0, r9, r0
        jr   ra
.data
.globl count
count:  .word 0
"#;

#[test]
fn static_private_only() {
    let mut world = World::new();
    world
        .install_template(
            "/src/main.o",
            ".module main\n.text\n.globl main\nmain: li v0, 41\naddi v0, v0, 1\njr ra\n",
        )
        .unwrap();
    let exe = world
        .link("/bin/p", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    let exit = world.run(10_000);
    assert_eq!(exit, WorldExit::AllExited, "log: {:?}", world.log);
    assert_eq!(world.exit_code(pid), Some(42), "log: {:?}", world.log);
}

#[test]
fn dynamic_public_counter() {
    let mut world = World::new();
    world
        .install_template("/shared/lib/counter.o", COUNTER)
        .unwrap();
    world
        .install_template(
            "/src/main.o",
            ".module main\n.text\n.globl main\nmain: addi sp, sp, -8\nsw ra, 0(sp)\njal bump\njal bump\nlw ra, 0(sp)\naddi sp, sp, 8\njr ra\n",
        )
        .unwrap();
    let exe = world
        .link(
            "/bin/demo",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/counter.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    let exit = world.run(10_000);
    assert_eq!(exit, WorldExit::AllExited, "log: {:?}", world.log);
    assert_eq!(world.exit_code(pid), Some(2), "log: {:?}", world.log);
    assert_eq!(
        world
            .peek_shared_word("/shared/lib/counter", "count")
            .unwrap(),
        2
    );

    // A second, separately linked program sees the same counter.
    let exe2 = world
        .link(
            "/bin/demo2",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/counter.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let pid2 = world.spawn(&exe2).unwrap();
    let exit = world.run(10_000);
    assert_eq!(exit, WorldExit::AllExited, "log: {:?}", world.log);
    assert_eq!(world.exit_code(pid2), Some(4), "log: {:?}", world.log);
}
