//! Tests of the run-time library services (the user-level half of
//! Hemlock): map_segment, test-and-set, segment heaps, setenv,
//! link_module/lookup_symbol (the dlopen/dlsym analogues).

use hemlock::{ShareClass, World, WorldExit};

fn run(world: &mut World, exe: &str) -> i32 {
    let pid = world.spawn(exe).unwrap();
    assert_eq!(
        world.run(500_000),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    world.exit_code(pid).unwrap()
}

#[test]
fn map_segment_by_name() {
    let mut world = World::new();
    world
        .kernel
        .vfs
        .create_file("/shared/data", 0o666, 1)
        .unwrap();
    world
        .kernel
        .vfs
        .write("/shared/data", 0, &31337u32.to_le_bytes())
        .unwrap();
    world
        .install_template(
            "/src/main.o",
            r#"
            .module main
            .text
            .globl main
            main:   li   v0, 101        ; map_segment(path) -> base
                    la   a0, path
                    syscall
                    lw   v0, 0(v0)      ; read the first word
                    jr   ra
            .data
            path:   .asciiz "/shared/data"
            "#,
        )
        .unwrap();
    let exe = world
        .link("/bin/m", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    assert_eq!(run(&mut world, &exe), 31337);
    // Explicit mapping avoids the fault path entirely.
    assert_eq!(world.stats().kernel.segv_faults, 0);
}

#[test]
fn map_segment_missing_path_fails() {
    let mut world = World::new();
    world
        .install_template(
            "/src/main.o",
            r#"
            .module main
            .text
            .globl main
            main:   li   v0, 101
                    la   a0, path
                    syscall
                    jr   ra             ; returns the (negative) errno
            .data
            path:   .asciiz "/shared/nope"
            "#,
        )
        .unwrap();
    let exe = world
        .link("/bin/m", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    assert!(run(&mut world, &exe) < 0);
}

#[test]
fn test_and_set_is_atomic_under_interleaving() {
    // Two processes race TAS on a shared lock word; exactly one may hold
    // it at a time. Each increments a shared counter 50 times under the
    // lock; any lost update would show in the final count.
    let mut world = World::new();
    world
        .install_template(
            "/shared/lib/sync.o",
            ".module sync\n.data\n.globl lock\nlock: .word 0\n.globl counter\ncounter: .word 0\n",
        )
        .unwrap();
    world
        .install_template(
            "/src/main.o",
            r#"
            .module main
            .text
            .globl main
            main:   addi sp, sp, -8
                    sw   ra, 0(sp)
                    li   v0, 6          ; fork: two workers
                    syscall
                    or   r20, v0, r0
                    li   r18, 50
            work:   blez r18, done
            acq:    la   a0, lock
                    li   a1, 1
                    li   v0, 102        ; TAS
                    syscall
                    bne  v0, r0, acq
                    la   r8, counter
                    lw   r9, 0(r8)
                    addi r9, r9, 1
                    sw   r9, 0(r8)
                    la   r8, lock
                    sw   r0, 0(r8)
                    addi r18, r18, -1
                    b    work
            done:   beq  r20, r0, cexit
                    li   v0, 16         ; parent reaps child
                    li   a0, 0
                    syscall
                    la   r8, counter
                    lw   a0, 0(r8)
                    li   v0, 1
                    syscall
            cexit:  li   v0, 1
                    li   a0, 0
                    syscall
            "#,
        )
        .unwrap();
    let exe = world
        .link(
            "/bin/race",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/sync.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    world.quantum = 13; // interleave aggressively
    assert_eq!(run(&mut world, &exe), 100);
}

#[test]
fn segment_heap_services() {
    // Guest allocates two nodes from a segment heap, links them, frees
    // one, and returns the surviving payload.
    let mut world = World::new();
    world
        .kernel
        .vfs
        .create_file("/shared/heapseg", 0o666, 1)
        .unwrap();
    let seg = world.kernel.vfs.path_to_addr("/shared/heapseg").unwrap();
    world
        .install_template(
            "/src/main.o",
            &format!(
                r#"
                .module main
                .text
                .globl main
                main:   li   a0, {seg}
                        li   a1, 4096
                        li   v0, 103        ; heap_init(seg, 4096)
                        syscall
                        bltz v0, fail
                        li   a0, {seg}
                        li   a1, 16
                        li   v0, 104        ; a = alloc(16)
                        syscall
                        or   r16, v0, r0
                        beq  r16, r0, fail
                        li   a0, {seg}
                        li   a1, 16
                        li   v0, 104        ; b = alloc(16)
                        syscall
                        or   r17, v0, r0
                        beq  r17, r0, fail
                        ; b->payload = 424242 (stores fault-map the segment)
                        li   r9, 424242
                        sw   r9, 0(r17)
                        ; free(a)
                        li   a0, {seg}
                        or   a1, r16, r0
                        li   v0, 105
                        syscall
                        lw   v0, 0(r17)
                        jr   ra
                fail:   li   v0, 1
                        li   a0, -1
                        syscall
                "#
            ),
        )
        .unwrap();
    let exe = world
        .link("/bin/h", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    assert_eq!(run(&mut world, &exe), 424242);
    // The heap state persists in the file: a second process can attach
    // and allocate again (reusing the freed block).
    let exe2 = exe.clone();
    assert_eq!(run(&mut world, &exe2), 424242);
}

#[test]
fn setenv_inherited_by_fork_children() {
    let mut world = World::new();
    world
        .install_template(
            "/src/main.o",
            r#"
            .module main
            .text
            .globl main
            main:   li   v0, 107        ; setenv("MARK", "7")
                    la   a0, name
                    la   a1, val
                    syscall
                    li   v0, 6          ; fork
                    syscall
                    bne  v0, r0, parent
                    ; child: getenv("MARK") into buf; exit(buf[0]-'0')
                    li   v0, 27
                    la   a0, name
                    la   a1, buf
                    li   a2, 8
                    syscall
                    la   r8, buf
                    lb   a0, 0(r8)
                    addi a0, a0, -48
                    li   v0, 1
                    syscall
            parent: li   v0, 16
                    li   a0, 0
                    syscall
                    or   a0, v1, r0
                    li   v0, 1
                    syscall
            .data
            name:   .asciiz "MARK"
            val:    .asciiz "7"
            buf:    .space 8
            "#,
        )
        .unwrap();
    let exe = world
        .link("/bin/env", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    assert_eq!(run(&mut world, &exe), 7);
}

#[test]
fn link_module_and_lookup_symbol() {
    // The explicit dlopen/dlsym-style interface: load a module by path at
    // run time, look up its export, call through the pointer.
    let mut world = World::new();
    world
        .install_template(
            "/shared/lib/plugin.o",
            ".module plugin\n.text\n.globl plugin_fn\nplugin_fn: li v0, 1234\njr ra\n",
        )
        .unwrap();
    world
        .install_template(
            "/src/main.o",
            r#"
            .module main
            .text
            .globl main
            main:   addi sp, sp, -8
                    sw   ra, 0(sp)
                    li   v0, 108        ; link_module(path, public)
                    la   a0, path
                    li   a1, 1
                    syscall
                    bltz v0, fail
                    li   v0, 109        ; lookup_symbol("plugin_fn")
                    la   a0, sym
                    syscall
                    beq  v0, r0, fail
                    jalr v0             ; call through the pointer
                    lw   ra, 0(sp)
                    addi sp, sp, 8
                    jr   ra
            fail:   li   v0, 1
                    li   a0, -1
                    syscall
            .data
            path:   .asciiz "/shared/lib/plugin.o"
            sym:    .asciiz "plugin_fn"
            "#,
        )
        .unwrap();
    let exe = world
        .link("/bin/dl", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    assert_eq!(run(&mut world, &exe), 1234);
}

#[test]
fn print_int_writes_console() {
    let mut world = World::new();
    world
        .install_template(
            "/src/main.o",
            ".module main\n.text\n.globl main\nmain: li a0, -42\nli v0, 106\nsyscall\nli v0, 0\njr ra\n",
        )
        .unwrap();
    let exe = world
        .link("/bin/p", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(world.run(100_000), WorldExit::AllExited);
    assert_eq!(world.console(pid), "-42\n");
}
