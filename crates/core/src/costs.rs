//! The deterministic cost model.
//!
//! The paper's quantitative claims (rwho saving "a little over a second"
//! on 65 machines; fault-driven lazy linking being "slower than the jump
//! table mechanism of SunOS"; the Presto post-processor consuming "one
//! quarter to one third of total compilation time") are wall-clock
//! numbers from circa-1992 hardware. The simulation cannot (and should
//! not) reproduce absolute times; instead every layer counts events —
//! instructions retired, system calls, faults, disk blocks — and this
//! module converts the counts into *simulated time* with per-event costs
//! loosely calibrated to an early-90s workstation. All experiments in
//! EXPERIMENTS.md report shapes and ratios, which are insensitive to the
//! exact constants.

use hkernel::KernelStats;
use hlink::ldl::LdlStats;
use hsfs::FsStats;

/// Simulated nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SimTime(pub u64);

impl SimTime {
    /// As floating-point milliseconds.
    pub fn millis(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As floating-point microseconds.
    pub fn micros(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// As floating-point seconds.
    pub fn seconds(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} s", self.seconds())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} ms", self.millis())
        } else {
            write!(f, "{:.1} µs", self.micros())
        }
    }
}

/// Aggregated counters from every layer of one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorldStats {
    /// Kernel counters (instructions, syscalls, faults, forks).
    pub kernel: KernelStats,
    /// Root file system I/O.
    pub root_fs: FsStats,
    /// Shared partition I/O.
    pub shared_fs: FsStats,
    /// Address-table lookups and probe steps.
    pub addr_lookups: u64,
    /// Linear/B-tree probe steps.
    pub addr_probe_steps: u64,
    /// Dynamic-linker counters summed over processes.
    pub ldl: LdlStats,
    /// Copy-on-write page copies.
    pub cow_copies: u64,
    /// Software-TLB hits summed over live and reaped processes.
    pub tlb_hits: u64,
    /// Software-TLB misses summed over live and reaped processes.
    pub tlb_misses: u64,
    /// Failures injected by an armed `hfault` plan (0 without chaos).
    pub faults_injected: u64,
    /// Recoveries the world took in response: victims killed cleanly,
    /// `ldl` retries that succeeded, spawns refused with an error.
    pub faults_recovered: u64,
    /// Data races reported by an armed sanitizer (0 when unarmed).
    /// Pure diagnostics: contributes nothing to simulated time.
    pub races_detected: u64,
    /// Synchronization edges the sanitizer observed (0 when unarmed).
    pub sync_edges: u64,
    /// Bytes of guest memory the sanitizer currently shadow-tracks
    /// (0 when unarmed).
    pub shadow_bytes: u64,
    /// Pages evicted by the clock hand under memory pressure.
    pub page_evictions: u64,
    /// Dirty shared pages written back before eviction.
    pub page_writebacks: u64,
    /// Anonymous pages written to the swap area.
    pub swap_outs: u64,
    /// Pages brought back in after eviction.
    pub swap_ins: u64,
    /// Frames resident at snapshot time.
    pub resident_frames: u64,
    /// High-water mark of resident frames.
    pub peak_resident_frames: u64,
    /// Frame budget (pages) of the world's pool.
    pub frame_budget: u64,
    /// Deterministic OOM kills taken.
    pub oom_kills: u64,
    /// Pages invalidated in remote TLBs by the shootdown protocol
    /// (always 0 on a single-CPU world).
    pub shootdowns: u64,
    /// Inter-processor interrupts sent for shootdowns — at least one per
    /// shootdown event, two when chaos dropped the first.
    pub ipis: u64,
    /// Runnable processes taken by an idle CPU away from their home CPU
    /// at a round boundary (each steal costs the context its warm TLB).
    pub cross_cpu_steals: u64,
    /// Decoded basic blocks built by the block cache (DESIGN.md §12).
    /// Pure host-speed diagnostics: like the sanitizer counters, the
    /// three `bblock` fields contribute nothing to simulated time, and
    /// they are the *only* fields allowed to differ between a cache-on
    /// and cache-off run of the same workload.
    pub bblocks_built: u64,
    /// Block entries served from the cache (`hits + built` = entries).
    pub bblock_hits: u64,
    /// Cached blocks dropped by TLB-parity invalidation events.
    pub bblock_invalidations: u64,
    /// Power cuts taken (DESIGN.md §13). A crash-free run has 0 in all
    /// four crash fields, so the pipeline + journal add zero simulated
    /// cost unless a crash actually happens.
    pub crashes: u64,
    /// Reboots that found (and replayed) a non-empty journal.
    pub journal_replays: u64,
    /// Disk block writes discarded by power cuts (the un-flushed
    /// suffix of the write pipeline).
    pub blocks_discarded: u64,
    /// Simulated time spent in crash recovery: journal replay I/O plus
    /// the boot-time scan of the surviving partition. Accumulated at
    /// reboot, already in nanoseconds (cost-model priced).
    pub recovery_ns: u64,
    /// Blocks verified by explicit scrub passes (DESIGN.md §14). A run
    /// that never scrubs has 0 in all four integrity fields, so the
    /// checksum machinery adds zero simulated cost by default.
    pub blocks_scrubbed: u64,
    /// Corrupt blocks detected (by scrub or boot-time verification).
    pub corruptions_detected: u64,
    /// Corrupt blocks healed from the replica region or the journal.
    pub blocks_repaired: u64,
    /// Processes killed by an uncorrectable-corruption `Eio` fault.
    pub eio_kills: u64,
    /// Prelink snapshots validated and applied (DESIGN.md §15). Each
    /// hit bills one `snapshot_validate_ns` instead of the per-symbol
    /// resolution it skipped.
    pub snapshot_hits: u64,
    /// Snapshot load attempts that found no snapshot file. Free — a
    /// cold boot with snapshots on costs exactly a snapshots-off boot.
    pub snapshot_misses: u64,
    /// Snapshots rejected by validation (stale content, changed scope,
    /// reassigned address, corrupt bytes). Each bills one
    /// `snapshot_validate_ns` on top of the full resolution that follows.
    pub snapshot_invalidations: u64,
    /// Snapshots (re)written after a successful resolve. Free — the
    /// rebuild rides a link that already paid full price.
    pub snapshot_rebuilds: u64,
}

impl WorldStats {
    /// Fraction of bus translations served by the software TLB
    /// (0.0 when no accesses have happened yet).
    pub fn tlb_hit_rate(&self) -> f64 {
        let total = self.tlb_hits + self.tlb_misses;
        if total == 0 {
            0.0
        } else {
            self.tlb_hits as f64 / total as f64
        }
    }
}

/// Per-event costs in simulated nanoseconds.
///
/// Defaults model a ~25 MIPS workstation with a slow disk — the class of
/// machine in the paper (SGI 4D/480, SPARCstation 1).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// One retired instruction.
    pub instruction_ns: u64,
    /// Kernel-crossing overhead of one system call.
    pub syscall_ns: u64,
    /// Taking a SIGSEGV through the kernel to a user-level handler and
    /// restarting the instruction afterward.
    pub fault_ns: u64,
    /// One disk block read or written (buffer-cache miss).
    pub disk_block_ns: u64,
    /// Per path-component lookup.
    pub lookup_ns: u64,
    /// One address-table probe step.
    pub probe_ns: u64,
    /// One symbol resolution in the dynamic linker.
    pub resolve_ns: u64,
    /// One page copied by copy-on-write.
    pub cow_ns: u64,
    /// mmap/munmap-style map manipulation per call (folded into faults
    /// and services; kept for ablations).
    pub map_ns: u64,
    /// Clock-hand bookkeeping of one eviction (TLB shootdown, page-table
    /// update). The I/O, if any, is billed separately.
    pub evict_ns: u64,
    /// One page of swap/writeback I/O (a 4 KB disk write).
    pub swap_io_ns: u64,
    /// Reading one page back from swap or the backing segment.
    pub swap_in_ns: u64,
    /// One inter-processor interrupt: cross-CPU notification latency of
    /// the TLB-shootdown protocol (0 IPIs on a single-CPU world).
    pub ipi_ns: u64,
    /// Remote invalidation of one page's TLB entry once the IPI lands.
    pub shootdown_ns: u64,
    /// Verifying one block in a scrub pass: read + checksum, cheaper
    /// than a cold block I/O (sequential scan, no seek per block).
    pub scrub_block_ns: u64,
    /// Healing one corrupt block: read the replica, rewrite the home
    /// location, re-verify — a couple of block I/Os.
    pub repair_ns: u64,
    /// Validating one prelink snapshot: read the record, check the
    /// envelope checksum, compare the scope hash and per-module content
    /// digests. A fraction of a cold block I/O — the point of the cache
    /// is that this replaces per-symbol `resolve_ns` and the metadata
    /// reads of a full link.
    pub snapshot_validate_ns: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            instruction_ns: 40,       // ~25 MIPS
            syscall_ns: 20_000,       // 20 µs trap + dispatch
            fault_ns: 120_000,        // signal delivery + restart
            disk_block_ns: 2_000_000, // 2 ms per 4 KB block
            lookup_ns: 5_000,
            probe_ns: 200,
            resolve_ns: 8_000,
            cow_ns: 30_000,
            map_ns: 25_000,
            evict_ns: 25_000,              // page-table + TLB bookkeeping
            swap_io_ns: 2_000_000,         // one 4 KB page to disk
            swap_in_ns: 2_000_000,         // one 4 KB page from disk
            ipi_ns: 5_000,                 // cross-CPU interrupt + ack
            shootdown_ns: 2_000,           // one remote TLB-entry invalidation
            scrub_block_ns: 500_000,       // sequential verify, 1/4 of a cold block
            repair_ns: 4_000_000,          // replica read + home rewrite
            snapshot_validate_ns: 250_000, // one record read + digest compare
        }
    }
}

impl CostModel {
    /// Total simulated time for a run's counters.
    pub fn time(&self, s: &WorldStats) -> SimTime {
        let mut ns = 0u64;
        ns += s.kernel.instructions * self.instruction_ns;
        ns += (s.kernel.syscalls + s.kernel.services) * self.syscall_ns;
        ns += s.kernel.segv_faults * self.fault_ns;
        let blocks = s.root_fs.blocks_read
            + s.root_fs.blocks_written
            + s.shared_fs.blocks_read
            + s.shared_fs.blocks_written;
        ns += blocks * self.disk_block_ns;
        ns += (s.root_fs.lookups + s.shared_fs.lookups) * self.lookup_ns;
        ns += s.addr_probe_steps * self.probe_ns;
        ns += (s.ldl.symbols_resolved + s.ldl.symbols_unresolved) * self.resolve_ns;
        ns += s.cow_copies * self.cow_ns;
        // Memory pressure: eviction bookkeeping, swap/writeback I/O, and
        // swap-ins. All zero under the default (generous) frame budget,
        // so unpressured runs cost exactly what they did before.
        ns += s.page_evictions * self.evict_ns;
        ns += (s.page_writebacks + s.swap_outs) * self.swap_io_ns;
        ns += s.swap_ins * self.swap_in_ns;
        // SMP: shootdown IPIs and remote invalidations. Both counters
        // are 0 on a single-CPU world, so existing runs are unchanged.
        ns += s.ipis * self.ipi_ns;
        ns += s.shootdowns * self.shootdown_ns;
        // Crash recovery: priced once at reboot (journal-replay I/O +
        // boot scan), accumulated here. Zero on crash-free runs.
        ns += s.recovery_ns;
        // Integrity: scrub passes and block repairs. Both counters are
        // 0 on a run that never scrubs and never sees corruption, so
        // the checksum machinery is free until it has work to do.
        ns += s.blocks_scrubbed * self.scrub_block_ns;
        ns += s.blocks_repaired * self.repair_ns;
        // Prelink snapshots: every load attempt that found a snapshot
        // (hit or rejected) pays one flat validation; misses and
        // rebuilds are free, so a cold boot with snapshots enabled
        // prices identically to a snapshots-off boot. The cache is
        // consulted once per (executable, boot) — same-boot respawns
        // ride the kernel's hot in-RAM state and bill nothing extra.
        ns += (s.snapshot_hits + s.snapshot_invalidations) * self.snapshot_validate_ns;
        SimTime(ns)
    }

    /// Time attributable to the file system only (for the rwho
    /// comparison, where the interesting delta is I/O + parsing).
    pub fn fs_time(&self, s: &WorldStats) -> SimTime {
        let blocks = s.root_fs.blocks_read
            + s.root_fs.blocks_written
            + s.shared_fs.blocks_read
            + s.shared_fs.blocks_written;
        SimTime(
            blocks * self.disk_block_ns
                + (s.root_fs.lookups + s.shared_fs.lookups) * self.lookup_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_counters_zero_time() {
        let m = CostModel::default();
        assert_eq!(m.time(&WorldStats::default()), SimTime(0));
    }

    #[test]
    fn instruction_and_fault_costs_add() {
        let m = CostModel::default();
        let mut s = WorldStats::default();
        s.kernel.instructions = 1000;
        s.kernel.segv_faults = 2;
        let t = m.time(&s);
        assert_eq!(t.0, 1000 * m.instruction_ns + 2 * m.fault_ns);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime(1_500).to_string(), "1.5 µs");
        assert_eq!(SimTime(2_500_000).to_string(), "2.500 ms");
        assert_eq!(SimTime(3_000_000_000).to_string(), "3.000 s");
    }

    #[test]
    fn scrub_and_repair_are_priced() {
        let m = CostModel::default();
        let s = WorldStats {
            blocks_scrubbed: 10,
            blocks_repaired: 2,
            ..Default::default()
        };
        assert_eq!(m.time(&s).0, 10 * m.scrub_block_ns + 2 * m.repair_ns);
        // Detection alone (corruptions found, nothing scrubbed or
        // repaired yet) is free: pricing rides the scan and the heal.
        let d = WorldStats {
            corruptions_detected: 5,
            eio_kills: 1,
            ..Default::default()
        };
        assert_eq!(m.time(&d), SimTime(0));
    }

    #[test]
    fn snapshot_validation_is_priced_and_misses_are_free() {
        let m = CostModel::default();
        let s = WorldStats {
            snapshot_hits: 3,
            snapshot_invalidations: 1,
            snapshot_misses: 7,
            snapshot_rebuilds: 8,
            ..Default::default()
        };
        // Hits and invalidations each bill one flat validation; misses
        // and rebuilds bill nothing — the cold path must price exactly
        // as a snapshots-off run.
        assert_eq!(m.time(&s).0, 4 * m.snapshot_validate_ns);
        // Validation must be far cheaper than the block I/O + per-symbol
        // resolution it replaces, or the cache would not pay.
        assert!(m.snapshot_validate_ns < m.disk_block_ns / 4);
    }

    #[test]
    fn fault_costs_dominate_instructions() {
        // A fault must cost thousands of instructions, or the lazy-vs-
        // eager tradeoff the paper discusses would not exist.
        let m = CostModel::default();
        assert!(m.fault_ns > 1000 * m.instruction_ns);
        assert!(m.disk_block_ns > m.syscall_ns);
    }
}
