//! The special `crt0` start-up module.
//!
//! "lds ... links in an alternative version of crt0.o, the Unix program
//! start-up module. At run time, crt0 calls our lazy dynamic linker,
//! ldl." (§2) In the simulation the call into `ldl` is a *service* trap
//! (number [`hlink::SERVICE_LDL_INIT`]): the kernel forwards it to the
//! embedding runtime, which runs the host-level `ldl` for the calling
//! process — the same user-level/kernel split as the paper, with the
//! library living outside the kernel.

use hobj::hasm::assemble;
use hobj::Object;

/// The assembly source of `crt0`.
pub const CRT0_SOURCE: &str = r#"
; Hemlock crt0: run ldl, then main, then exit(main's return value).
.module crt0
.text
.globl _start
_start:
    li   v0, 100        ; SERVICE_LDL_INIT: run the lazy dynamic linker
    syscall
    jal  main
    or   a0, v0, r0     ; exit status = main's return value
    li   v0, 1          ; SYS_EXIT
    syscall
"#;

/// Assembles the standard `crt0` object.
pub fn crt0_object() -> Object {
    assemble("crt0", CRT0_SOURCE).expect("crt0 source is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crt0_assembles_and_exports_start() {
        let obj = crt0_object();
        assert!(obj.find_export("_start").is_some());
        // It must reference `main` (resolved by lds or ldl).
        assert!(obj.undefined_symbols().any(|s| s == "main"));
        assert_eq!(obj.validate(), Ok(()));
    }

    #[test]
    fn crt0_is_tiny() {
        // 8 words: two li pseudos (2 words each) + syscall + jal + or + syscall.
        assert_eq!(crt0_object().text.len(), 8 * 4);
    }
}
