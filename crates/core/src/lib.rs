//! `hemlock` — transparent sharing of variables and subroutines across
//! application boundaries.
//!
//! This is the top of the reproduction of *Linking Shared Segments*
//! (Garrett, Scott, et al., USENIX Winter 1993). The paper's Hemlock
//! system consists of "new static and dynamic linkers, a run-time
//! library, and a set of kernel extensions"; this crate supplies the
//! run-time library and glues the pieces from the substrate crates into
//! one usable system:
//!
//! * [`World`] — a complete simulated machine: kernel, file systems
//!   (including the address-mapped shared partition), the module
//!   registry, and per-process dynamic-linking state. Programs are
//!   assembled, linked with `lds`, spawned, and run; SIGSEGV-class
//!   faults are routed to Hemlock's user-level handler (`ldl`), exactly
//!   as in the paper.
//! * [`crt0`] — the special start-up module `lds` links into every
//!   program; it calls `ldl` before `main`.
//! * [`segheap`] — the storage-management package that allocates "from
//!   the heaps associated with individual segments, instead of a heap
//!   associated with the calling program" (§5) — the allocator behind
//!   the xfig case study.
//! * [`services`] — the user-level service calls backing the runtime
//!   library (ldl-init, map-segment, test-and-set, segment heaps).
//! * [`costs`] — a deterministic cost model translating simulation
//!   counters into time, so the paper's relative performance claims can
//!   be evaluated without 1992 hardware.
//!
//! # Quick start
//!
//! ```
//! use hemlock::{World, ShareClass};
//!
//! let mut world = World::new();
//! // A shared counter module, and a program that bumps it.
//! world.install_template(
//!     "/shared/lib/counter.o",
//!     r#"
//!     .module counter
//!     .text
//!     .globl bump
//!     bump:   la   r8, count
//!             lw   r9, 0(r8)
//!             addi r9, r9, 1
//!             sw   r9, 0(r8)
//!             or   v0, r9, r0
//!             jr   ra
//!     .data
//!     .globl count
//!     count:  .word 0
//!     "#,
//! ).unwrap();
//! world.install_template(
//!     "/src/main.o",
//!     r#"
//!     .module main
//!     .text
//!     .globl main
//!     main:   addi sp, sp, -8
//!             sw   ra, 0(sp)
//!             jal  bump
//!             jal  bump
//!             lw   ra, 0(sp)
//!             addi sp, sp, 8
//!             jr   ra        ; returns bump's result (2)
//!     "#,
//! ).unwrap();
//! let exe = world
//!     .link(
//!         "/bin/demo",
//!         &[("/src/main.o", ShareClass::StaticPrivate),
//!           ("/shared/lib/counter.o", ShareClass::DynamicPublic)],
//!     )
//!     .unwrap();
//! let pid = world.spawn(&exe).unwrap();
//! world.run_to_completion();
//! assert_eq!(world.exit_code(pid), Some(2));
//! // The counter lives in a persistent shared segment:
//! assert_eq!(world.peek_shared_word("/shared/lib/counter", "count").unwrap(), 2);
//! ```

pub mod costs;
pub mod crt0;
pub mod htrace;
pub mod segheap;
pub mod services;
pub mod world;

pub use costs::{CostModel, SimTime, WorldStats};
pub use hfault::{FaultHandle, FaultPlan, FaultSite, ALL_SITES};
pub use hobj::ShareClass;
pub use hsan::{LockId, Report, Sanitizer};
pub use htrace::{TraceBuffer, TraceEvent, TraceRecord};
pub use world::{ExitRecord, RaceRecord, Unsettled, WaitReason, World, WorldError, WorldExit};
