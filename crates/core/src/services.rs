//! User-level runtime services.
//!
//! Hemlock's run-time library lives outside the kernel. Guest programs
//! reach it through *service* traps — syscall numbers at or above
//! `hkernel::syscall::SERVICE_BASE`, which the kernel forwards to the
//! embedder untouched. This module defines the service numbers and
//! argument conventions; [`crate::world::World`] dispatches them.

/// Run the lazy dynamic linker for this process (issued by `crt0`).
/// No arguments. Returns 0, or `-1` if linking failed fatally.
pub const SVC_LDL_INIT: u32 = hlink::SERVICE_LDL_INIT;

/// `map_segment(path)` — map the shared segment named by the
/// NUL-terminated string at `$a0`; returns its base address.
///
/// This is the library call programs use to attach a raw data segment by
/// name (pointer-following handles the un-named case).
pub const SVC_MAP_SEGMENT: u32 = 101;

/// `test_and_set(addr, new)` — atomically exchange the word at `$a0`
/// with `$a1`; returns the old value.
///
/// The R3000 has no atomic read-modify-write instruction either; real
/// Hemlock used kernel semaphores or scheduler-assisted spin locks
/// (§5 "Synchronization"). The service trap gives user-level spin locks
/// an atomic primitive with syscall-level cost, which preserves the
/// relative economics.
pub const SVC_TAS: u32 = 102;

/// `seg_heap_init(region_addr, region_len)` — initialize a per-segment
/// heap (§5's storage-management package) inside a mapped shared segment.
pub const SVC_HEAP_INIT: u32 = 103;

/// `seg_heap_alloc(region_addr, size)` — allocate from a segment heap;
/// returns an absolute pointer valid in every process, or 0.
pub const SVC_HEAP_ALLOC: u32 = 104;

/// `seg_heap_free(region_addr, ptr)` — release an allocation.
pub const SVC_HEAP_FREE: u32 = 105;

/// `print_int(value)` — write the signed decimal value to the console
/// (convenience for examples and tests).
pub const SVC_PRINT_INT: u32 = 106;

/// `setenv(name, value)` — set an environment variable (inherited across
/// `fork`); how the Presto-style launcher points children at a temporary
/// module directory.
pub const SVC_SETENV: u32 = 107;

/// `link_module(path, class)` — ask the runtime linker to load a module
/// right now (the `dlopen`-style explicit interface the paper contrasts
/// with dld/SunOS `dlopen`). `$a0` names the template, `$a1` is 0 for
/// dynamic-private, 1 for dynamic-public. Returns the module base.
pub const SVC_LINK_MODULE: u32 = 108;

/// `lookup_symbol(name)` — resolve a symbol by name against the
/// process's current link state (the `dlsym` analogue). Returns the
/// address or 0.
pub const SVC_LOOKUP_SYMBOL: u32 = 109;

#[cfg(test)]
mod tests {
    use super::*;
    use hkernel::syscall::SERVICE_BASE;

    #[test]
    fn all_services_above_kernel_range() {
        for n in [
            SVC_LDL_INIT,
            SVC_MAP_SEGMENT,
            SVC_TAS,
            SVC_HEAP_INIT,
            SVC_HEAP_ALLOC,
            SVC_HEAP_FREE,
            SVC_PRINT_INT,
            SVC_SETENV,
            SVC_LINK_MODULE,
            SVC_LOOKUP_SYMBOL,
        ] {
            assert!(n >= SERVICE_BASE);
        }
    }

    #[test]
    fn numbers_distinct() {
        let all = [
            SVC_LDL_INIT,
            SVC_MAP_SEGMENT,
            SVC_TAS,
            SVC_HEAP_INIT,
            SVC_HEAP_ALLOC,
            SVC_HEAP_FREE,
            SVC_PRINT_INT,
            SVC_SETENV,
            SVC_LINK_MODULE,
            SVC_LOOKUP_SYMBOL,
        ];
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }
}
