//! The `World`: a complete simulated Hemlock machine.
//!
//! A `World` owns the kernel (processes, address spaces, file systems),
//! the public-module registry, and per-process dynamic-linking state. It
//! runs the event loop that the paper distributes between the kernel and
//! the user-level run-time library: SIGSEGV-class faults go to Hemlock's
//! fault handler (`ldl`), service traps go to the run-time library, and
//! everything else is ordinary execution.

use crate::costs::{CostModel, WorldStats};
use crate::crt0::crt0_object;
use crate::htrace::{TraceBuffer, TraceEvent};
use crate::segheap::SegHeap;
use crate::services::*;
use hfault::{FaultHandle, FaultPlan};
use hkernel::kernel::ExecImage;
use hkernel::{Kernel, Pid, ProcState, RunEvent};
use hlink::ldl::{FaultDisposition, LinkEvent};
use hlink::{Ldl, Lds, LdsInput, LinkError, LinkState, ModuleRegistry, ModuleSpec};
use hobj::binfmt::{self, BinError};
use hobj::hasm::{assemble, AsmError};
use hobj::{LoadImage, ShareClass};
use hsan::{Report, Sanitizer};
use hsfs::path as fspath;
use hsfs::vfs::{Mount, Vnode};
use hsfs::FsError;
use hvm::Reg;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Why [`World::run`] stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorldExit {
    /// Every process has exited.
    AllExited,
    /// Live processes remain but none can run.
    Deadlock,
    /// The slice budget ran out.
    StepLimit,
}

/// Returned by [`World::run_to_settle`] when the slice budget ran out
/// before the world reached a stable state (all exited or deadlocked).
/// Under chaos testing this is the *bounded* failure mode: the caller
/// knows exactly how many processes were still live.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Unsettled {
    /// Live (non-zombie) processes remaining at the step limit.
    pub live: usize,
    /// What each live process was doing (pid order), so livelocks —
    /// pressure thrash, lock convoys, fault loops — are diagnosable
    /// from the error alone.
    pub waits: Vec<(Pid, WaitReason)>,
}

/// What a live process was waiting on when the slice budget ran out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaitReason {
    /// Eligible to run — still working (or starved of slices).
    Runnable,
    /// Runnable, but its last observed event was a fault at this
    /// address that the runtime was still resolving (a process stuck
    /// re-faulting shows up here, not as plain `Runnable`).
    AwaitingFault {
        /// The faulting address.
        addr: u32,
    },
    /// Blocked acquiring a file lock.
    BlockedOnLock {
        /// Path of the locked file.
        path: String,
    },
    /// Blocked in P() on a kernel semaphore.
    BlockedOnSem {
        /// The semaphore id.
        sem: u32,
    },
    /// Blocked in `waitpid`.
    AwaitingChild {
        /// The specific child awaited, or `None` for any.
        child: Option<Pid>,
    },
}

impl std::fmt::Display for WaitReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitReason::Runnable => write!(f, "runnable"),
            WaitReason::AwaitingFault { addr } => {
                write!(f, "awaiting-fault {addr:#010x}")
            }
            WaitReason::BlockedOnLock { path } => write!(f, "blocked-on-lock {path}"),
            WaitReason::BlockedOnSem { sem } => write!(f, "blocked-on-sem #{sem}"),
            WaitReason::AwaitingChild { child: Some(pid) } => {
                write!(f, "awaiting-child {pid}")
            }
            WaitReason::AwaitingChild { child: None } => write!(f, "awaiting-child any"),
        }
    }
}

impl std::fmt::Display for Unsettled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "world did not settle: {} process(es) still live",
            self.live
        )?;
        for (i, (pid, reason)) in self.waits.iter().enumerate() {
            write!(
                f,
                "{}pid {pid}: {reason}{}",
                if i == 0 { " (" } else { ", " },
                if i + 1 == self.waits.len() { ")" } else { "" }
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for Unsettled {}

/// A race the armed sanitizer reported, decorated with the raced
/// segment's shared-partition path (see DESIGN.md §9).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceRecord {
    /// Path of the raced segment (e.g. `/shared/lib/counter#1`).
    pub path: String,
    /// Byte offset of the first overlapping byte within the segment.
    pub offset: u32,
    /// The earlier access.
    pub first_pid: Pid,
    /// PC of the earlier access.
    pub first_pc: u32,
    /// Whether the earlier access was a store.
    pub first_is_write: bool,
    /// The later access (the one that exposed the race).
    pub second_pid: Pid,
    /// PC of the later access.
    pub second_pc: u32,
    /// Whether the later access was a store.
    pub second_is_write: bool,
}

/// A recorded process exit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExitRecord {
    /// The process.
    pub pid: Pid,
    /// Its status (negative ⇒ killed by the runtime).
    pub code: i32,
}

/// Errors from the host-level `World` API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorldError {
    /// Assembly failed.
    Asm(Vec<AsmError>),
    /// Linking failed.
    Link(LinkError),
    /// A file operation failed.
    Fs(FsError),
    /// An executable failed to decode.
    Bin(BinError),
    /// The pid does not name a live process.
    NoSuchProcess,
    /// A symbol was not found where expected.
    NoSuchSymbol(String),
    /// The machine is between a power cut and the next reboot.
    PoweredOff,
}

impl From<LinkError> for WorldError {
    fn from(e: LinkError) -> WorldError {
        WorldError::Link(e)
    }
}
impl From<FsError> for WorldError {
    fn from(e: FsError) -> WorldError {
        WorldError::Fs(e)
    }
}
impl From<Vec<AsmError>> for WorldError {
    fn from(e: Vec<AsmError>) -> WorldError {
        WorldError::Asm(e)
    }
}
impl From<BinError> for WorldError {
    fn from(e: BinError) -> WorldError {
        WorldError::Bin(e)
    }
}

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldError::Asm(errs) => {
                write!(f, "assembly failed:")?;
                for e in errs {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            WorldError::Link(e) => write!(f, "link failed: {e}"),
            WorldError::Fs(e) => write!(f, "file system: {e}"),
            WorldError::Bin(e) => write!(f, "bad executable: {e}"),
            WorldError::NoSuchProcess => write!(f, "no such process"),
            WorldError::NoSuchSymbol(s) => write!(f, "no such symbol `{s}`"),
            WorldError::PoweredOff => write!(f, "machine is powered off"),
        }
    }
}

impl std::error::Error for WorldError {}

/// The complete simulated machine.
pub struct World {
    /// The kernel (public for inspection by tests and benches).
    pub kernel: Kernel,
    /// The public-module metadata registry.
    pub registry: ModuleRegistry,
    link: HashMap<Pid, LinkState>,
    images: HashMap<Pid, Arc<LoadImage>>,
    exits: HashMap<Pid, i32>,
    fault_guard: HashMap<Pid, (u32, u32)>,
    /// Runtime diagnostics (linker warnings, kill reasons).
    pub log: Vec<String>,
    /// Scheduler quantum in instructions.
    pub quantum: u64,
    /// Force a full transitive link at `ldl`-init time instead of lazy,
    /// fault-driven linking (the eager baseline for experiment E2).
    pub eager: bool,
    /// Accumulated stats from processes that have been reaped.
    reaped_cow: u64,
    reaped_ldl: hlink::ldl::LdlStats,
    /// Fault-path trace ring (see [`crate::htrace`]).
    trace: TraceBuffer,
    /// Cost constants used to stamp trace records.
    pub costs: CostModel,
    /// Chaos handle shared with the kernel, file systems, and linker
    /// (unarmed — and free — unless [`World::arm_faults`] is called).
    faults: FaultHandle,
    /// Recoveries taken in response to injected faults (kills, retries,
    /// refused spawns); mirrors the `RecoveryTaken` trace records.
    recovered: u64,
    /// The happens-before sanitizer (None — and free — unless
    /// [`World::arm_sanitizer`] is called). The kernel holds a second
    /// handle as its installed [`hkernel::Monitor`].
    sanitizer: Option<Arc<Mutex<Sanitizer>>>,
    /// Races drained from the sanitizer, decorated with segment paths.
    races: Vec<RaceRecord>,
    /// False between a [`World::power_cut`] and the next
    /// [`World::reboot`] — the machine is off; nothing can run.
    powered: bool,
    /// Power cuts taken (DESIGN.md §13).
    crashes: u64,
    /// Reboots that replayed a non-empty journal.
    journal_replays: u64,
    /// Disk block writes discarded by power cuts.
    blocks_discarded: u64,
    /// Simulated nanoseconds spent in crash recovery (journal replay).
    recovery_ns: u64,
    /// Blocks verified by explicit scrub passes (DESIGN.md §14).
    blocks_scrubbed: u64,
    /// Corrupt blocks detected by scrub or boot-time verification.
    corruptions_detected: u64,
    /// Corrupt blocks healed from the replica region or the journal.
    blocks_repaired: u64,
    /// Processes killed by an uncorrectable-corruption `Eio` fault.
    eio_kills: u64,
    /// Run a scrub pass every N scheduler slices (`None` = never).
    scrub_interval: Option<u64>,
    /// Slices since the last interval-driven scrub pass.
    slices_since_scrub: u64,
}

impl Default for World {
    fn default() -> Self {
        World::new()
    }
}

/// How many identical consecutive faults a process may take before the
/// runtime concludes the fault is unresolvable and kills it.
const FAULT_LOOP_LIMIT: u32 = 64;

impl World {
    /// Creates a world with the conventional directory skeleton.
    pub fn new() -> World {
        let mut kernel = Kernel::new();
        // `HVM_BBCACHE=off|0|false` disables the decoded basic-block
        // cache (DESIGN.md §12) — the CI identity lanes re-prove every
        // suite against the pure fetch+decode interpreter this way.
        if let Ok(v) = std::env::var("HVM_BBCACHE") {
            if matches!(v.as_str(), "off" | "0" | "false") {
                kernel.set_bbcache(false);
            }
        }
        // `LDL_SNAPSHOT=off|0|false` disables persistent prelink
        // snapshots (DESIGN.md §15) — the CI identity lanes re-prove
        // every suite against full from-scratch resolution this way.
        if let Ok(v) = std::env::var("LDL_SNAPSHOT") {
            if matches!(v.as_str(), "off" | "0" | "false") {
                kernel.set_link_snapshots(false);
            }
        }
        // `HSFS_JOURNAL=off|0|false` disables the shared partition's
        // block-write pipeline + journal (DESIGN.md §13) — the CI
        // identity lane re-proves that a crash-free run is observably
        // identical (and identically priced) either way.
        if let Ok(v) = std::env::var("HSFS_JOURNAL") {
            if matches!(v.as_str(), "off" | "0" | "false") {
                kernel.vfs.shared.fs.set_durability(false);
            }
        }
        // `HSFS_INTEGRITY=off|0|false` disables the end-to-end block
        // checksums, replica region, and scrub machinery (DESIGN.md
        // §14) — the CI identity lane re-proves that a corruption-free
        // run is observably identical (and identically priced) either
        // way.
        if let Ok(v) = std::env::var("HSFS_INTEGRITY") {
            if matches!(v.as_str(), "off" | "0" | "false") {
                kernel.vfs.shared.fs.set_integrity(false);
            }
        }
        for dir in [
            "/src",
            "/bin",
            "/tmp",
            "/home",
            "/etc",
            "/usr/hemlock/lib",
            "/var/hemlock/meta",
            "/shared/lib",
            "/shared/templates",
            "/shared/tmp",
        ] {
            kernel
                .vfs
                .mkdir_all(dir, 0o777, 0)
                .expect("fresh namespace");
        }
        World {
            kernel,
            registry: ModuleRegistry::new(),
            link: HashMap::new(),
            images: HashMap::new(),
            exits: HashMap::new(),
            fault_guard: HashMap::new(),
            log: Vec::new(),
            quantum: 10_000,
            eager: false,
            reaped_cow: 0,
            reaped_ldl: Default::default(),
            trace: TraceBuffer::default(),
            costs: CostModel::default(),
            faults: FaultHandle::unarmed(),
            recovered: 0,
            sanitizer: None,
            races: Vec::new(),
            powered: true,
            crashes: 0,
            journal_replays: 0,
            blocks_discarded: 0,
            recovery_ns: 0,
            blocks_scrubbed: 0,
            corruptions_detected: 0,
            blocks_repaired: 0,
            eio_kills: 0,
            scrub_interval: None,
            slices_since_scrub: 0,
        }
    }

    // --- chaos ---

    /// Arms a fault-injection plan across the whole stack (kernel,
    /// address spaces, both file systems, and — via the kernel — the
    /// dynamic linker). Returns a clone of the shared handle so callers
    /// can inspect counters mid-run. Arm *after* building and installing
    /// programs if setup should stay failure-free.
    pub fn arm_faults(&mut self, plan: FaultPlan) -> FaultHandle {
        let handle = FaultHandle::armed(plan);
        self.kernel.arm_faults(handle.clone());
        self.faults = handle.clone();
        handle
    }

    /// The world's chaos handle (unarmed by default).
    pub fn fault_handle(&self) -> &FaultHandle {
        &self.faults
    }

    /// Moves injections journaled by the plan into the trace ring,
    /// attributed to `pid` (0 for world-level work).
    fn drain_injections(&mut self, pid: Pid) {
        for site in self.faults.drain_journal() {
            self.trace
                .record(pid, 0, TraceEvent::FaultInjected { site: site.name() });
        }
    }

    /// Records one recovery action, keeping the counter and the trace in
    /// lock-step (`WorldStats::faults_recovered` == `RecoveryTaken`
    /// records emitted).
    fn record_recovery(&mut self, pid: Pid, cost_ns: u64, action: &'static str) {
        self.recovered += 1;
        self.trace
            .record(pid, cost_ns, TraceEvent::RecoveryTaken { action });
    }

    // --- memory pressure ---

    /// Bounds the physical frame pool to `frames` pages. The default
    /// (`hkernel::layout::DEFAULT_FRAME_BUDGET`) is generous enough
    /// that ordinary workloads never evict; lower it to simulate
    /// pressure. Takes effect at the next scheduling slice.
    pub fn set_frame_budget(&mut self, frames: u64) {
        self.kernel.frame_pool().set_capacity(frames);
    }

    /// Bounds the kernel swap area to `pages` pages of anonymous
    /// memory. When pool *and* swap are exhausted, the deterministic
    /// OOM killer fires.
    pub fn set_swap_pages(&mut self, pages: u32) {
        self.kernel.frame_pool().set_swap_pages(pages);
    }

    /// Caps each process's resident set to `quota` pages (or lifts the
    /// cap). Enforced at slice boundaries by evicting the over-quota
    /// process's own pages, even when the global pool has room.
    pub fn set_resident_quota(&mut self, quota: Option<u64>) {
        self.kernel.frame_pool().set_quota(quota);
    }

    /// The world's frame pool (budget configuration and statistics).
    pub fn frame_pool(&self) -> &hkernel::FramePool {
        self.kernel.frame_pool()
    }

    // --- SMP ---

    /// Gives the kernel `n` simulated CPUs (clamped to 1..=64). The
    /// default of 1 reproduces the classic one-process-per-slice
    /// schedule byte for byte; with more, each scheduling round binds up
    /// to `n` runnable processes (affinity + steal-on-idle) and
    /// advances them in lockstep sub-quanta of `quantum / n`
    /// instructions — a fixed interleave, so any seed replays exactly
    /// (DESIGN.md §11). Takes effect at the next round boundary.
    pub fn set_cpus(&mut self, n: u32) {
        self.kernel.set_cpus(n);
    }

    /// Number of simulated CPUs (1 unless [`World::set_cpus`] raised it).
    pub fn cpus(&self) -> u32 {
        self.kernel.cpus()
    }

    /// Drains the kernel's SMP journal into the trace ring. Shootdowns
    /// are stamped with the same IPI + per-page invalidation price the
    /// cost model bills, so trace costs and the clock reconcile; steals
    /// are free diagnostics (their price is the cold TLB they cause).
    fn pump_smp(&mut self) {
        for ev in self.kernel.drain_smp_events() {
            let (pid, cost, event) = match ev {
                hkernel::SmpEvent::Shootdown {
                    from_cpu,
                    to_cpu,
                    pid,
                    addr,
                    pages,
                    retried,
                } => {
                    let ipis = if retried { 2 } else { 1 };
                    (
                        pid,
                        ipis * self.costs.ipi_ns + pages as u64 * self.costs.shootdown_ns,
                        TraceEvent::TlbShootdown {
                            from_cpu,
                            to_cpu,
                            addr,
                            pages,
                            retried,
                        },
                    )
                }
                hkernel::SmpEvent::Steal { cpu, pid, from_cpu } => {
                    (pid, 0, TraceEvent::CpuSteal { cpu, from_cpu })
                }
            };
            self.trace.record(pid, cost, event);
        }
    }

    /// Drains every block cache's invalidation journal into the trace
    /// ring. Zero-cost diagnostics (the cache must not move simulated
    /// time), attributed to the owning pid; a cache-off run drains
    /// nothing, so these records never perturb the identity suites'
    /// filtered streams.
    fn pump_bb(&mut self) {
        for (pid, ev) in self.kernel.drain_bb_events() {
            self.trace.record(
                pid,
                0,
                TraceEvent::BlockInvalidated {
                    addr: ev.addr,
                    blocks: ev.blocks,
                    cause: ev.cause,
                },
            );
        }
    }

    /// Enables or disables the decoded basic-block cache at runtime
    /// (overrides the `HVM_BBCACHE` environment hook; the differential
    /// suite uses this to run the same workload both ways).
    pub fn set_bbcache(&mut self, enabled: bool) {
        self.kernel.set_bbcache(enabled);
    }

    /// Enables or disables persistent prelink snapshots at runtime
    /// (overrides the `LDL_SNAPSHOT` environment hook; the identity
    /// suite and the `(snapshot off)` bench lanes run the same workload
    /// both ways). Affects processes spawned afterwards.
    pub fn set_link_snapshots(&mut self, enabled: bool) {
        self.kernel.set_link_snapshots(enabled);
    }

    /// Drains the frame pool's pressure journal into the trace ring,
    /// stamping each record with its cost-model price. The counters
    /// these records mirror are billed identically by
    /// [`CostModel::time`], so trace costs and the clock reconcile:
    /// an anonymous eviction carries its swap write, a shared eviction
    /// just the bookkeeping, a writeback/swap-in one page of I/O.
    fn pump_pressure(&mut self) {
        for ev in self.kernel.frame_pool().drain_events() {
            let (pid, cost, event) = match ev {
                hkernel::PageEvent::Evicted { pid, addr, kind } => {
                    let io = if kind == "anon" {
                        self.costs.swap_io_ns
                    } else {
                        0
                    };
                    (
                        pid,
                        self.costs.evict_ns + io,
                        TraceEvent::PageEvicted { addr, kind },
                    )
                }
                hkernel::PageEvent::Writeback { pid, addr } => (
                    pid,
                    self.costs.swap_io_ns,
                    TraceEvent::WritebackTaken { addr },
                ),
                hkernel::PageEvent::SwappedIn { pid, addr } => (
                    pid,
                    self.costs.swap_in_ns,
                    TraceEvent::PageSwappedIn { addr },
                ),
            };
            self.trace.record(pid, cost, event);
        }
    }

    // --- sanitizer ---

    /// Arms the happens-before sanitizer (see `crates/hsan` and
    /// DESIGN.md §9): every guest load/store reaching a shared-file page
    /// and every kernel-mediated synchronization edge is observed from
    /// now on, and data races, lock-order cycles, and protection drift
    /// are reported through [`World::races`], the trace ring, and the
    /// log. Returns a clone of the shared handle for direct inspection.
    ///
    /// The sanitizer is an observer: it adds zero simulated time, and an
    /// unarmed world pays only one `Option` branch per shared access.
    /// Arm *after* building and installing programs so setup traffic
    /// (host-level pokes are invisible anyway) stays out of the shadow.
    pub fn arm_sanitizer(&mut self) -> Arc<Mutex<Sanitizer>> {
        let san = Arc::new(Mutex::new(Sanitizer::new()));
        self.kernel.set_monitor(san.clone());
        self.sanitizer = Some(san.clone());
        san
    }

    /// True if [`World::arm_sanitizer`] has been called.
    pub fn sanitizer_armed(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// The armed sanitizer's shared handle, if any — for direct
    /// inspection (per-CPU access streams, shadow sizes) without
    /// having kept the clone [`World::arm_sanitizer`] returned.
    pub fn sanitizer(&self) -> Option<Arc<Mutex<Sanitizer>>> {
        self.sanitizer.clone()
    }

    /// Races reported by the armed sanitizer so far, oldest first.
    pub fn races(&self) -> &[RaceRecord] {
        &self.races
    }

    /// The shared-partition path of inode `ino`, for report decoration.
    fn shared_path(&self, ino: u32) -> String {
        self.kernel
            .vfs
            .path_of(Vnode {
                mount: Mount::Shared,
                ino,
            })
            .unwrap_or_else(|_| format!("/shared/#{ino}"))
    }

    /// Moves findings out of the armed sanitizer into the trace ring
    /// (at zero cost — diagnostics, not simulation), the log, and the
    /// decorated race list. Trace records are attributed to the pid
    /// each finding names.
    fn drain_sanitizer(&mut self) {
        let Some(san) = &self.sanitizer else {
            return;
        };
        let reports = san.lock().unwrap().drain_reports();
        for rep in reports {
            match rep {
                Report::Race {
                    ino,
                    off,
                    first,
                    second,
                } => {
                    let path = self.shared_path(ino);
                    let rw = |w: bool| if w { "write" } else { "read" };
                    self.log.push(format!(
                        "sanitizer: data race on {path}+{off:#x}: pid {} {} at {:#010x} \
                         vs pid {} {} at {:#010x}",
                        first.pid,
                        rw(first.is_write),
                        first.pc,
                        second.pid,
                        rw(second.is_write),
                        second.pc,
                    ));
                    self.trace.record(
                        second.pid,
                        0,
                        TraceEvent::RaceDetected {
                            path: path.clone(),
                            offset: off,
                            first: (first.pid, first.pc, first.is_write),
                            second: (second.pid, second.pc, second.is_write),
                        },
                    );
                    self.races.push(RaceRecord {
                        path,
                        offset: off,
                        first_pid: first.pid,
                        first_pc: first.pc,
                        first_is_write: first.is_write,
                        second_pid: second.pid,
                        second_pc: second.pc,
                        second_is_write: second.is_write,
                    });
                }
                Report::LockOrderCycle {
                    pid: culprit,
                    chain,
                } => {
                    let chain: Vec<String> = chain.iter().map(|l| l.to_string()).collect();
                    self.log.push(format!(
                        "sanitizer: lock-order cycle closed by pid {culprit}: {}",
                        chain.join(" -> ")
                    ));
                    self.trace.record(
                        culprit,
                        0,
                        TraceEvent::LockOrderCycle {
                            pid: culprit,
                            chain,
                        },
                    );
                }
                Report::ProtectionViolation {
                    pid: writer,
                    pc,
                    uid,
                    ino,
                    off,
                } => {
                    let path = self.shared_path(ino);
                    self.log.push(format!(
                        "sanitizer: pid {writer} (uid {uid}) wrote {path}+{off:#x} at \
                         {pc:#010x} but the current mode denies it (stale mapping)"
                    ));
                    self.trace.record(
                        writer,
                        0,
                        TraceEvent::ProtectionDrift {
                            path,
                            offset: off,
                            uid,
                        },
                    );
                }
            }
        }
    }

    // --- building programs ---

    /// Assembles `source` and installs the object file at `path`. The
    /// module name defaults to the file stem.
    pub fn install_template(&mut self, path: &str, source: &str) -> Result<(), WorldError> {
        let stem = fspath::split_parent(path)
            .map(|(_, name)| name.trim_end_matches(".o").to_string())
            .unwrap_or_else(|| "module".to_string());
        let obj = assemble(&stem, source)?;
        let bytes = binfmt::encode_object(&obj);
        self.kernel.vfs.write_file(path, &bytes, 0o666, 0)?;
        Ok(())
    }

    /// Links a program from `(module spec, sharing class)` pairs and
    /// writes the executable to `out_path`. Warnings go to `self.log`.
    pub fn link(
        &mut self,
        out_path: &str,
        modules: &[(&str, ShareClass)],
    ) -> Result<String, WorldError> {
        self.link_with(out_path, modules, "/", &[], None)
    }

    /// Full-control variant of [`World::link`].
    pub fn link_with(
        &mut self,
        out_path: &str,
        modules: &[(&str, ShareClass)],
        cwd: &str,
        cli_dirs: &[String],
        ld_library_path: Option<&str>,
    ) -> Result<String, WorldError> {
        let input = LdsInput {
            program: out_path.to_string(),
            cwd: cwd.to_string(),
            cli_dirs: cli_dirs.to_vec(),
            ld_library_path: ld_library_path.map(str::to_string),
            modules: modules
                .iter()
                .map(|(spec, class)| ModuleSpec::new(*spec, *class))
                .collect(),
            crt0: crt0_object(),
            strict_duplicates: false,
        };
        let out = Lds::link(&mut self.kernel.vfs, &mut self.registry, &input)?;
        self.log.extend(out.warnings);
        let bytes = binfmt::encode_image(&out.image);
        self.kernel.vfs.write_file(out_path, &bytes, 0o777, 0)?;
        Ok(out_path.to_string())
    }

    // --- running programs ---

    /// Spawns a process from an executable, with defaults (uid 1, cwd
    /// `/`, empty environment).
    pub fn spawn(&mut self, exe_path: &str) -> Result<Pid, WorldError> {
        self.spawn_with(exe_path, "/", 1, &[])
    }

    /// Spawns with explicit cwd, uid, and environment.
    pub fn spawn_with(
        &mut self,
        exe_path: &str,
        cwd: &str,
        uid: u32,
        env: &[(&str, &str)],
    ) -> Result<Pid, WorldError> {
        if !self.powered {
            return Err(WorldError::PoweredOff);
        }
        let bytes = self.kernel.vfs.read_all(exe_path)?;
        let image = binfmt::decode_image(&bytes)?;
        let injected_before = self.faults.injected();
        let pid = self.kernel.spawn(uid);
        let exec = ExecImage {
            name: image.name.clone(),
            text_base: image.text_base,
            text: image.text.clone(),
            data_base: image.data_base,
            data: image.data.clone(),
            bss_size: (image.bss_base + image.bss_size)
                .saturating_sub(image.data_base + image.data.len() as u32),
            entry: image.entry,
        };
        if self.kernel.exec_image(pid, &exec).is_err() {
            // The image never ran; reap the half-built process so the
            // rest of the world can still settle, and tell the caller.
            self.kernel.finalize_exit(pid, -1);
            if self.faults.injected() > injected_before {
                self.record_recovery(pid, self.costs.syscall_ns, "spawn-refused");
            }
            self.drain_injections(pid);
            return Err(WorldError::Fs(FsError::NoSpace));
        }
        {
            let proc = self.kernel.procs.get_mut(&pid).expect("just spawned");
            proc.cwd = cwd.to_string();
            for (k, v) in env {
                proc.env.insert(k.to_string(), v.to_string());
            }
        }
        self.images.insert(pid, Arc::new(image));
        self.link.insert(pid, LinkState::default());
        Ok(pid)
    }

    /// Runs the world for up to `max_slices` scheduler slices.
    pub fn run(&mut self, max_slices: u64) -> WorldExit {
        for _ in 0..max_slices {
            self.sync_processes();
            let ev = self.kernel.step_system(self.quantum);
            let ev_pid = match &ev {
                RunEvent::Quantum(pid) | RunEvent::Blocked(pid) | RunEvent::Exited(pid, _) => *pid,
                RunEvent::AllExited | RunEvent::Deadlock => 0,
                RunEvent::Break { pid, .. }
                | RunEvent::Fatal { pid, .. }
                | RunEvent::Service { pid, .. }
                | RunEvent::Segv { pid, .. }
                | RunEvent::OomKill { pid, .. } => *pid,
            };
            match ev {
                RunEvent::Quantum(_) | RunEvent::Blocked(_) => {}
                RunEvent::Exited(pid, code) => {
                    self.exits.insert(pid, code);
                }
                RunEvent::AllExited => {
                    self.drain_injections(0);
                    self.pump_pressure();
                    self.pump_smp();
                    self.pump_bb();
                    self.drain_sanitizer();
                    return WorldExit::AllExited;
                }
                RunEvent::Deadlock => {
                    self.drain_injections(0);
                    self.pump_pressure();
                    self.pump_smp();
                    self.pump_bb();
                    self.drain_sanitizer();
                    return WorldExit::Deadlock;
                }
                RunEvent::Break { pid, code } => {
                    self.log.push(format!("pid {pid}: break {code}; killed"));
                    self.kill(pid, 128 + code as i32);
                }
                RunEvent::Fatal { pid, fault } => {
                    self.log.push(format!("pid {pid}: fatal fault: {fault}"));
                    if matches!(fault, hvm::Fault::Eio { .. }) {
                        // The SIGBUS-analog: a mapped page's backing
                        // block is uncorrectably corrupt. Only the
                        // touching process dies — the typed exit code
                        // (128 + SIGBUS) is the containment contract
                        // e14 pins.
                        self.eio_kills += 1;
                        self.kill(pid, 135);
                    } else {
                        self.kill(pid, -1);
                    }
                }
                RunEvent::Service { pid, num } => self.service(pid, num),
                RunEvent::Segv { pid, fault } => self.segv(pid, fault.addr()),
                RunEvent::OomKill { pid, resident } => {
                    // The kernel already finalized the victim's exit and
                    // reclaimed its frames; record the typed recovery.
                    self.log.push(format!(
                        "pid {pid}: out of memory (pool and swap exhausted); \
                         killed holding {resident} resident pages"
                    ));
                    self.exits.insert(pid, 137);
                    self.record_recovery(pid, self.costs.fault_ns, "oom-kill");
                }
            }
            // Publish injections decided during this slice (kernel
            // syscalls inject outside the linker's journal), then any
            // pressure and shootdown work the rebalance pass did.
            self.drain_injections(ev_pid);
            self.pump_pressure();
            self.pump_smp();
            self.pump_bb();
            self.drain_sanitizer();
            self.pump_scrub();
        }
        self.drain_injections(0);
        self.pump_pressure();
        self.pump_smp();
        self.pump_bb();
        self.drain_sanitizer();
        WorldExit::StepLimit
    }

    /// Runs until everything exits (or a generous slice cap).
    pub fn run_to_completion(&mut self) -> WorldExit {
        self.run(2_000_000)
    }

    /// Runs until the world reaches a *stable* state — every process has
    /// exited, or the survivors are deadlocked and can make no further
    /// progress. [`Err(Unsettled)`](Unsettled) is the bounded failure
    /// mode: the slice budget ran out with processes still live.
    pub fn run_to_settle(&mut self, max_slices: u64) -> Result<WorldExit, Unsettled> {
        match self.run(max_slices) {
            WorldExit::StepLimit => {
                let waits: Vec<(Pid, WaitReason)> = self
                    .kernel
                    .procs
                    .iter()
                    .filter(|(_, p)| !matches!(p.state, ProcState::Zombie(_)))
                    .map(|(&pid, p)| (pid, self.wait_reason(pid, p)))
                    .collect();
                Err(Unsettled {
                    live: waits.len(),
                    waits,
                })
            }
            exit => Ok(exit),
        }
    }

    /// Classifies what a live process is waiting on (the per-process
    /// snapshot [`Unsettled`] carries).
    fn wait_reason(&self, pid: Pid, proc: &hkernel::Process) -> WaitReason {
        use hkernel::process::Block;
        match proc.state {
            ProcState::Blocked(Block::Lock { vnode, .. }) => WaitReason::BlockedOnLock {
                path: self
                    .kernel
                    .vfs
                    .path_of(vnode)
                    .unwrap_or_else(|_| format!("#{}", vnode.ino)),
            },
            ProcState::Blocked(Block::Sem(sem)) => WaitReason::BlockedOnSem { sem },
            ProcState::Blocked(Block::Wait(child)) => WaitReason::AwaitingChild { child },
            // Runnable, but mid-fault-resolution per the guard: the
            // last event we saw from it was a fault at this address.
            _ => match self.fault_guard.get(&pid) {
                Some(&(addr, n)) if n > 0 => WaitReason::AwaitingFault { addr },
                _ => WaitReason::Runnable,
            },
        }
    }

    /// Kills a process (recording a synthetic exit status).
    pub fn kill(&mut self, pid: Pid, code: i32) {
        self.kernel.finalize_exit(pid, code);
        self.exits.insert(pid, code);
    }

    /// The recorded exit status of a process.
    pub fn exit_code(&self, pid: Pid) -> Option<i32> {
        self.exits
            .get(&pid)
            .copied()
            .or_else(|| match self.kernel.procs.get(&pid)?.state {
                ProcState::Zombie(code) => Some(code),
                _ => None,
            })
    }

    /// A process's console output.
    pub fn console(&self, pid: Pid) -> String {
        self.kernel.console_of(pid)
    }

    /// Per-process dynamic-linker statistics.
    pub fn ldl_stats(&self, pid: Pid) -> Option<hlink::ldl::LdlStats> {
        self.link.get(&pid).map(|s| s.stats)
    }

    /// Link state of a process (for tests and diagnostics).
    pub fn link_state(&self, pid: Pid) -> Option<&LinkState> {
        self.link.get(&pid)
    }

    /// The fault-path trace ring (see [`crate::htrace`]).
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Mutable access to the trace ring (clearing between experiment
    /// phases, resizing).
    pub fn trace_mut(&mut self) -> &mut TraceBuffer {
        &mut self.trace
    }

    /// The trace ring rendered as text, for debugging E6-style runs.
    pub fn trace_dump(&self) -> String {
        self.trace.dump()
    }

    // --- event handlers ---

    /// Gives fork children a link state (cloned from the parent — the
    /// child shares the parent's public mappings and has COW copies of
    /// the private ones at identical addresses) and reaps state for
    /// processes that no longer exist.
    fn sync_processes(&mut self) {
        let pids: Vec<Pid> = self.kernel.procs.keys().copied().collect();
        for pid in &pids {
            if !self.link.contains_key(pid) {
                let ppid = self.kernel.procs[pid].ppid;
                let mut inherited = self.link.get(&ppid).cloned().unwrap_or_default();
                // Journal entries belong to the process that generated
                // them; a fork child starts with an empty journal.
                inherited.journal.clear();
                self.link.insert(*pid, inherited);
                if let Some(img) = self.images.get(&ppid).cloned() {
                    self.images.insert(*pid, img);
                }
            }
        }
        let gone: Vec<Pid> = self
            .link
            .keys()
            .filter(|pid| !self.kernel.procs.contains_key(pid))
            .copied()
            .collect();
        for pid in gone {
            if let Some(state) = self.link.remove(&pid) {
                self.merge_ldl(&state.stats);
            }
            self.images.remove(&pid);
            self.fault_guard.remove(&pid);
        }
    }

    /// Drains the linker's event journal into the trace ring, stamping
    /// each step with its cost-model price.
    fn pump_trace(&mut self, pid: Pid) {
        let Some(state) = self.link.get_mut(&pid) else {
            return;
        };
        for ev in state.journal.drain(..) {
            let (cost, event) = match ev {
                LinkEvent::AddrTranslated { addr, path } => (
                    self.costs.lookup_ns,
                    TraceEvent::AddrTranslated { addr, path },
                ),
                LinkEvent::SegmentMapped { base, module } => (
                    self.costs.map_ns,
                    TraceEvent::SegmentMapped { base, module },
                ),
                LinkEvent::SymbolResolved {
                    module,
                    symbol,
                    addr,
                } => (
                    self.costs.resolve_ns,
                    TraceEvent::SymbolResolved {
                        module,
                        symbol,
                        addr,
                    },
                ),
                LinkEvent::FaultRetried { what: _, attempts } => {
                    // The linker absorbed a transient injected failure by
                    // retrying; each attempt cost roughly one fault.
                    self.recovered += 1;
                    (
                        self.costs.fault_ns * u64::from(attempts),
                        TraceEvent::RecoveryTaken {
                            action: "ldl-retry",
                        },
                    )
                }
                // Snapshot records mirror the pricing rule exactly: a
                // hit or an invalidation bills one flat validation; a
                // miss and a rebuild are free (DESIGN.md §15).
                LinkEvent::SnapshotHit { exe, modules } => (
                    self.costs.snapshot_validate_ns,
                    TraceEvent::SnapshotHit { exe, modules },
                ),
                LinkEvent::SnapshotMiss { exe } => (0, TraceEvent::SnapshotMiss { exe }),
                LinkEvent::SnapshotInvalidated { exe, why } => (
                    self.costs.snapshot_validate_ns,
                    TraceEvent::SnapshotInvalidated { exe, why },
                ),
                LinkEvent::SnapshotRebuilt { exe, modules } => {
                    (0, TraceEvent::SnapshotRebuilt { exe, modules })
                }
            };
            self.trace.record(pid, cost, event);
        }
    }

    fn merge_ldl(&mut self, s: &hlink::ldl::LdlStats) {
        self.reaped_ldl.absorb(s);
    }

    fn segv(&mut self, pid: Pid, addr: u32) {
        // A refault on a page the clock hand evicted is legitimate
        // forward progress — the guest ran long enough between the two
        // faults for the page to age out — not a resolution loop. Under
        // a tight frame budget one hot shared word can fault at the same
        // address hundreds of times, so it must not count toward
        // FAULT_LOOP_LIMIT.
        let evicted_refault = self
            .kernel
            .procs
            .get(&pid)
            .and_then(|p| p.aspace.entry(addr))
            .map(|e| e.was_evicted())
            .unwrap_or(false);
        let guard = self.fault_guard.entry(pid).or_insert((addr, 0));
        if evicted_refault {
            *guard = (addr, 0);
        } else if guard.0 == addr {
            guard.1 += 1;
            if guard.1 > FAULT_LOOP_LIMIT {
                self.log.push(format!(
                    "pid {pid}: unresolvable fault loop at {addr:#010x}; killed"
                ));
                self.kill(pid, 139);
                return;
            }
        } else {
            *guard = (addr, 0);
        }
        self.trace
            .record(pid, self.costs.fault_ns, TraceEvent::FaultTaken { addr });
        let injected_before = self.faults.injected();
        let result = {
            let state = self.link.entry(pid).or_default();
            let mut ldl = Ldl::new(&mut self.kernel, &mut self.registry, state, pid);
            ldl.handle_fault(addr)
        };
        self.pump_trace(pid);
        self.drain_injections(pid);
        // Did the handler hit an injected failure on this fault?
        let hit_injection = self.faults.injected() > injected_before;
        match result {
            Ok(FaultDisposition::Resolved) => {
                self.trace.record(
                    pid,
                    self.costs.instruction_ns,
                    TraceEvent::InstructionRestarted { addr },
                );
            }
            Ok(FaultDisposition::DeliveredToGuest) => {}
            Ok(FaultDisposition::Fatal) => {
                self.log.push(format!(
                    "pid {pid}: segmentation fault at {addr:#010x} (unresolvable)"
                ));
                if hit_injection {
                    self.record_recovery(pid, self.costs.fault_ns, "killed-victim");
                }
                self.kill(pid, 139);
            }
            Err(e) => {
                self.log
                    .push(format!("pid {pid}: fault at {addr:#010x}: {e}"));
                if !self.kernel.deliver_segv(pid, addr) {
                    if hit_injection {
                        self.record_recovery(pid, self.costs.fault_ns, "killed-victim");
                    }
                    self.kill(pid, 139);
                }
            }
        }
    }

    fn reg(&self, pid: Pid, r: Reg) -> u32 {
        self.kernel
            .procs
            .get(&pid)
            .map(|p| p.cpu.reg(r))
            .unwrap_or(0)
    }

    fn guest_str(&self, pid: Pid, addr: u32) -> Result<String, i32> {
        let proc = self.kernel.procs.get(&pid).ok_or(-14)?;
        let raw = proc
            .aspace
            .read_cstr(&self.kernel.vfs.shared, addr)
            .map_err(|_| -14)?;
        let cwd = proc.cwd.clone();
        fspath::absolutize(&raw, &cwd).map_err(|e| -e.errno())
    }

    fn guest_str_raw(&self, pid: Pid, addr: u32) -> Result<String, i32> {
        let proc = self.kernel.procs.get(&pid).ok_or(-14)?;
        proc.aspace
            .read_cstr(&self.kernel.vfs.shared, addr)
            .map_err(|_| -14)
    }

    fn service(&mut self, pid: Pid, num: u32) {
        let a0 = self.reg(pid, Reg::A0);
        let a1 = self.reg(pid, Reg::A1);
        let result: i32 = match num {
            SVC_LDL_INIT => self.svc_ldl_init(pid),
            SVC_MAP_SEGMENT => match self.guest_str(pid, a0) {
                Ok(path) => {
                    let result = {
                        let state = self.link.entry(pid).or_default();
                        let mut ldl = Ldl::new(&mut self.kernel, &mut self.registry, state, pid);
                        ldl.map_segment_by_path(&path)
                    };
                    match result {
                        Ok(base) => base as i32,
                        Err(e) => {
                            self.log
                                .push(format!("pid {pid}: map_segment({path}): {e}"));
                            err_code(&e)
                        }
                    }
                }
                Err(e) => e,
            },
            SVC_TAS => {
                let proc = self.kernel.procs.get_mut(&pid);
                match proc {
                    Some(p) => match p.aspace.read_bytes(&self.kernel.vfs.shared, a0, 4) {
                        Ok(old) => {
                            let oldv = u32::from_le_bytes([old[0], old[1], old[2], old[3]]);
                            match p.aspace.write_bytes(
                                &mut self.kernel.vfs.shared,
                                a0,
                                &a1.to_le_bytes(),
                            ) {
                                Ok(()) => {
                                    if let Some(san) = &self.sanitizer {
                                        if hsfs::SharedFs::contains(a0) {
                                            // Invert the fixed slot layout
                                            // arithmetically; `addr_to_ino`
                                            // would bill address-table probes
                                            // to the guest.
                                            let rel = a0 - hsfs::SHARED_BASE;
                                            let ino = rel / hsfs::SLOT_SIZE;
                                            let off = rel % hsfs::SLOT_SIZE;
                                            let pc = p.cpu.pc.wrapping_sub(4);
                                            san.lock().unwrap().tas(pid, pc, ino, off, oldv, a1);
                                        }
                                    }
                                    oldv as i32
                                }
                                Err(_) => -14,
                            }
                        }
                        Err(_) => -14,
                    },
                    None => -14,
                }
            }
            SVC_HEAP_INIT => self.svc_heap(a0, a1, HeapOp::Init),
            SVC_HEAP_ALLOC => self.svc_heap(a0, a1, HeapOp::Alloc),
            SVC_HEAP_FREE => self.svc_heap(a0, a1, HeapOp::Free),
            SVC_PRINT_INT => {
                let text = format!("{}\n", a0 as i32);
                if let Some(p) = self.kernel.procs.get_mut(&pid) {
                    p.console.extend_from_slice(text.as_bytes());
                }
                0
            }
            SVC_SETENV => match (self.guest_str_raw(pid, a0), self.guest_str_raw(pid, a1)) {
                (Ok(name), Ok(value)) => {
                    if let Some(p) = self.kernel.procs.get_mut(&pid) {
                        p.env.insert(name, value);
                    }
                    0
                }
                (Err(e), _) | (_, Err(e)) => e,
            },
            SVC_LINK_MODULE => match self.guest_str(pid, a0) {
                Ok(path) => {
                    let class = if a1 == 1 {
                        ShareClass::DynamicPublic
                    } else {
                        ShareClass::DynamicPrivate
                    };
                    let result = {
                        let state = self.link.entry(pid).or_default();
                        let mut ldl = Ldl::new(&mut self.kernel, &mut self.registry, state, pid);
                        ldl.load_module(&path, class, hlink::scope::ROOT)
                            .map(|name| ldl.state.modules.get(&name).map(|m| m.base).unwrap_or(0))
                    };
                    match result {
                        Ok(base) => base as i32,
                        Err(e) => {
                            self.log
                                .push(format!("pid {pid}: link_module({path}): {e}"));
                            err_code(&e)
                        }
                    }
                }
                Err(e) => e,
            },
            SVC_LOOKUP_SYMBOL => match self.guest_str_raw(pid, a0) {
                Ok(name) => {
                    let state = self.link.entry(pid).or_default();
                    state.lookup_global(&name).unwrap_or(0) as i32
                }
                Err(e) => e,
            },
            other => {
                self.log.push(format!("pid {pid}: unknown service {other}"));
                -38
            }
        };
        // Several services run the linker; publish whatever it journaled.
        self.pump_trace(pid);
        self.kernel.set_reg(pid, Reg::V0, result as u32);
    }

    fn svc_ldl_init(&mut self, pid: Pid) -> i32 {
        let Some(image) = self.images.get(&pid).cloned() else {
            self.log
                .push(format!("pid {pid}: ldl_init without an image"));
            return -14;
        };
        let eager = self.eager;
        let result = {
            let state = self.link.entry(pid).or_default();
            if !state.modules.is_empty() || !state.image_exports.is_empty() {
                // Fork children inherit a fully initialized state; crt0
                // runs only in fresh processes, but be idempotent.
                return 0;
            }
            let mut ldl = Ldl::new(&mut self.kernel, &mut self.registry, state, pid);
            ldl.init(&image).and_then(|warnings| {
                if eager {
                    // Eager baseline: keep linking until no module is
                    // still awaiting its first touch (transitive).
                    loop {
                        let lazy: Vec<String> = ldl
                            .state
                            .modules
                            .values()
                            .filter(|m| m.lazy)
                            .map(|m| m.name.clone())
                            .collect();
                        if lazy.is_empty() {
                            break;
                        }
                        for name in lazy {
                            ldl.lazy_link(&name)?;
                        }
                    }
                }
                Ok(warnings)
            })
        };
        match result {
            Ok(warnings) => {
                for w in warnings {
                    self.log.push(format!("pid {pid}: {w}"));
                }
                0
            }
            Err(e) => {
                self.log.push(format!("pid {pid}: ldl init failed: {e}"));
                -1
            }
        }
    }

    fn svc_heap(&mut self, region_addr: u32, arg: u32, op: HeapOp) -> i32 {
        let (ino, off) = match self.kernel.vfs.shared.addr_to_ino(region_addr) {
            Ok(x) => x,
            Err(e) => return -e.errno(),
        };
        if let HeapOp::Init = op {
            // Grow the file so the heap region is materialized.
            let need = off as u64 + arg as u64;
            let size = self
                .kernel
                .vfs
                .shared
                .fs
                .metadata(ino)
                .map(|m| m.size)
                .unwrap_or(0);
            if size < need {
                if let Err(e) = self.kernel.vfs.shared.fs.truncate(ino, need) {
                    return -e.errno();
                }
            }
        }
        let bytes = match self.kernel.vfs.shared.fs.file_bytes_mut(ino) {
            Ok(b) => b,
            Err(e) => return -e.errno(),
        };
        if off as usize >= bytes.len() {
            // The region address lies beyond the backing file (possible
            // for alloc/free on a never-initialized heap address).
            return -22;
        }
        let region = &mut bytes[off as usize..];
        match op {
            HeapOp::Init => {
                if region.len() < arg as usize {
                    return -22;
                }
                match SegHeap::init(&mut region[..arg as usize], region_addr) {
                    Ok(_) => 0,
                    Err(_) => -22,
                }
            }
            HeapOp::Alloc => match SegHeap::attach(region, region_addr) {
                Ok(mut h) => h.alloc(arg).map(|p| p as i32).unwrap_or(0),
                Err(_) => 0,
            },
            HeapOp::Free => match SegHeap::attach(region, region_addr) {
                Ok(mut h) => match h.free(arg) {
                    Ok(()) => 0,
                    Err(_) => -22,
                },
                Err(_) => -22,
            },
        }
    }

    // --- system administration ---

    /// Everything that dies when the machine stops, cleanly or not:
    /// processes (their cumulative counters folded in first, as a reap
    /// would), linker state, cached images, semaphores, the scheduler
    /// round, frame and swap residency, all advisory locks, the
    /// in-kernel address table, and the module-metadata cache. On a
    /// clean halt the shared partition is flushed first, so nothing in
    /// the write pipeline is lost; on a crash the un-flushed suffix is
    /// discarded (and counted).
    fn halt(&mut self, crash: bool) {
        // Get pending diagnostics into the ring before the state that
        // produced them disappears.
        self.drain_injections(0);
        self.pump_pressure();
        self.pump_smp();
        self.pump_bb();
        self.drain_sanitizer();
        if !crash {
            self.kernel.vfs.shared.fs.barrier();
        }
        for (_, s) in self.link.drain() {
            self.reaped_ldl.absorb(&s.stats);
        }
        let discarded = self.kernel.vfs.shared.fs.power_cut();
        self.kernel.power_cut();
        self.images.clear();
        self.fault_guard.clear();
        self.kernel.vfs.shared.linear_table_clear_for_test();
        self.registry.clear_cache();
        self.powered = false;
        if crash {
            self.crashes += 1;
            self.blocks_discarded += discarded;
            self.trace.record(
                0,
                0,
                TraceEvent::CrashTaken {
                    blocks_discarded: discarded,
                },
            );
            self.log.push(format!(
                "power cut: {discarded} un-flushed block writes lost"
            ));
        }
    }

    /// Pulls the plug (DESIGN.md §13): every process dies mid-
    /// instruction, all volatile kernel state — TLBs, block caches,
    /// advisory locks, frame pool, swap slots, the in-kernel address
    /// table — vanishes, and any disk write not yet flushed by a
    /// barrier is discarded. The simulated disk (the flushed prefix of
    /// the write stream plus the on-disk journal) survives for
    /// [`World::reboot`]. Nothing can run until then.
    pub fn power_cut(&mut self) {
        self.halt(true);
    }

    /// Brings the machine back up: replays the metadata journal onto
    /// the surviving disk image (idempotent — a reboot that crashes
    /// during recovery just replays again), rebuilds the address table
    /// by the boot-time scan of §3, then runs `fsck` and self-heals any
    /// residual damage (including crash-orphaned swap files). Called on
    /// a running machine it is a *clean* reboot: the pipeline is
    /// flushed first, so no journal replay is needed and nothing is
    /// lost. Public module instances and their on-disk metadata
    /// survive; programs can be spawned again immediately.
    pub fn reboot(&mut self) {
        if self.powered {
            self.halt(false);
        }
        let rs = self.kernel.vfs.shared.fs.replay_journal();
        if rs.records > 0 {
            // Recovery is billed once, here: reading the journal (one
            // block per record) plus writing the block images home.
            let ns = (rs.records + rs.blocks) * self.costs.disk_block_ns;
            self.journal_replays += 1;
            self.recovery_ns += ns;
            self.trace.record(
                0,
                ns,
                TraceEvent::JournalReplayed {
                    records: rs.records,
                    blocks: rs.blocks,
                },
            );
            self.log.push(format!(
                "journal replay: {} records ({} block images) applied",
                rs.records, rs.blocks
            ));
        }
        self.kernel.vfs.shared.boot_scan();
        self.fsck_at_boot();
        // A new boot re-validates each executable's prelink snapshot
        // exactly once (DESIGN.md §15).
        self.kernel.clear_snapshot_consults();
        self.powered = true;
        self.log
            .push("system rebooted; address table rebuilt by scan".to_string());
    }

    /// True unless a [`World::power_cut`] has not yet been followed by a
    /// [`World::reboot`].
    pub fn powered(&self) -> bool {
        self.powered
    }

    /// Flushes the shared partition's write pipeline (mapped-store dirt
    /// included) and checkpoints its journal — the machine-level
    /// `sync`. Data flushed by a completed barrier survives any later
    /// crash. Returns the disk write index after the flush.
    pub fn barrier(&mut self) -> u64 {
        self.kernel.vfs.shared.fs.barrier()
    }

    /// The shared disk's write index: how many block writes the device
    /// has accepted. Crash-point enumeration runs the workload once to
    /// learn the final index, then re-runs killing the device at each
    /// earlier index.
    pub fn disk_seq(&self) -> u64 {
        self.kernel.vfs.shared.fs.disk_seq()
    }

    /// Arms a deterministic crash point: the shared disk dies at write
    /// `k` (0-based), discarding that write and everything after it.
    /// With `tear`, the first discarded write is half-applied — the
    /// torn-block case. The death is invisible until [`World::power_cut`]
    /// makes it matter.
    pub fn set_crash_at(&mut self, k: u64, tear: bool) {
        self.kernel.vfs.shared.fs.set_crash_at(k, tear);
    }

    /// Enables or disables the shared partition's durability pipeline
    /// (see the `HSFS_JOURNAL` environment hook). Disabling makes every
    /// write immediately durable — the pre-§13 behavior.
    pub fn set_durability(&mut self, on: bool) {
        self.kernel.vfs.shared.fs.set_durability(on);
    }

    // --- disk integrity (DESIGN.md §14) ---

    /// Enables or disables the end-to-end integrity machinery — block
    /// checksums, self-describing address stamps, the replica region,
    /// and scrub — on the shared partition (see the `HSFS_INTEGRITY`
    /// environment hook). On by default with the durability pipeline.
    pub fn set_integrity(&mut self, on: bool) {
        self.kernel.vfs.shared.fs.set_integrity(on);
    }

    /// Whether the integrity machinery is on.
    pub fn integrity_enabled(&self) -> bool {
        self.kernel.vfs.shared.fs.integrity_enabled()
    }

    /// Runs a scrub pass every `every` scheduler slices during
    /// [`World::run`] (`None` disables the hook — the default).
    pub fn set_scrub_interval(&mut self, every: Option<u64>) {
        self.scrub_interval = every;
        self.slices_since_scrub = 0;
    }

    /// `(data blocks written, integrity-region blocks written)` on the
    /// shared partition — the write-amplification pair the e14 bench
    /// gates.
    pub fn write_amplification(&self) -> (u64, u64) {
        self.kernel.vfs.shared.fs.write_amplification()
    }

    /// Pages of the shared partition currently poisoned (uncorrectable
    /// corruption contained; 0 in every healthy run).
    pub fn poisoned_blocks(&self) -> u64 {
        self.kernel.vfs.shared.fs.poisoned_blocks()
    }

    /// The every-N-slices scrub hook of [`World::run`].
    fn pump_scrub(&mut self) {
        let Some(every) = self.scrub_interval else {
            return;
        };
        self.slices_since_scrub += 1;
        if self.slices_since_scrub >= every {
            self.slices_since_scrub = 0;
            self.scrub();
        }
    }

    /// One deterministic scrub pass over the shared partition: verify
    /// every stamped block against the checksum region, heal each
    /// corrupt one from the replica region or the journal, poison what
    /// cannot be healed. Priced per verified block plus per repair;
    /// every finding is journaled and counted. `None` when the
    /// durability pipeline or integrity is off.
    pub fn scrub(&mut self) -> Option<hsfs::ScrubReport> {
        let report = self.kernel.vfs.shared.fs.scrub()?;
        self.blocks_scrubbed += report.blocks_scanned;
        let corrupt = report.findings.len() as u64;
        let mut repaired = 0u64;
        for f in &report.findings {
            self.corruptions_detected += 1;
            self.trace.record(
                0,
                0,
                TraceEvent::CorruptionDetected {
                    ino: f.ino,
                    block: f.offset,
                    reason: f.reason,
                },
            );
            self.log.push(format!(
                "scrub: corruption detected ino {} block {} ({})",
                f.ino, f.offset, f.reason
            ));
            match f.repaired_from {
                Some(source) => {
                    repaired += 1;
                    self.blocks_repaired += 1;
                    self.trace.record(
                        0,
                        self.costs.repair_ns,
                        TraceEvent::BlockRepaired {
                            ino: f.ino,
                            block: f.offset,
                            source,
                        },
                    );
                    self.log.push(format!(
                        "scrub: ino {} block {} healed from {}",
                        f.ino, f.offset, source
                    ));
                }
                None => {
                    self.log.push(format!(
                        "scrub: ino {} block {} uncorrectable; page poisoned",
                        f.ino, f.offset
                    ));
                }
            }
        }
        self.trace.record(
            0,
            report.blocks_scanned * self.costs.scrub_block_ns,
            TraceEvent::ScrubPass {
                blocks: report.blocks_scanned,
                corrupt,
                repaired,
            },
        );
        Some(report)
    }

    /// Resolves `path` to a shared-partition inode without perturbing
    /// any priced counter — corruption is a disk phenomenon; injecting
    /// it must be invisible to the cost model (cf. `fsck_at_boot`).
    fn resolve_shared_unpriced(&mut self, path: &str) -> Option<hsfs::Ino> {
        let sfs = &mut self.kernel.vfs.shared;
        let (lookups, probes) = (sfs.addr_lookups, sfs.addr_probe_steps);
        let fs_stats = sfs.fs.stats;
        let resolved = self.kernel.vfs.resolve(path);
        let sfs = &mut self.kernel.vfs.shared;
        sfs.addr_lookups = lookups;
        sfs.addr_probe_steps = probes;
        sfs.fs.stats = fs_stats;
        match resolved {
            Ok(Vnode {
                mount: Mount::Shared,
                ino,
            }) => Some(ino),
            _ => None,
        }
    }

    /// Deterministically corrupts one block of a shared segment on the
    /// simulated disk (chaos-site mirror for tests and experiments).
    /// `block` is a block index, not a byte offset. False when the path
    /// does not name a stamped shared file block.
    pub fn corrupt_shared_block(
        &mut self,
        path: &str,
        block: u64,
        kind: hsfs::CorruptKind,
    ) -> bool {
        let Some(ino) = self.resolve_shared_unpriced(path) else {
            return false;
        };
        let offset = block * u64::from(hsfs::BLOCK_SIZE);
        self.kernel
            .vfs
            .shared
            .fs
            .corrupt_block_for_test(ino, offset, kind)
    }

    /// Corrupts the replica-region copy of one shared-segment block
    /// (tests; with the journal checkpointed this makes the block
    /// uncorrectable — the double-corruption case of e14).
    pub fn corrupt_shared_replica(&mut self, path: &str, block: u64) -> bool {
        let Some(ino) = self.resolve_shared_unpriced(path) else {
            return false;
        };
        let offset = block * u64::from(hsfs::BLOCK_SIZE);
        self.kernel
            .vfs
            .shared
            .fs
            .corrupt_replica_for_test(ino, offset)
    }

    /// Order-insensitive digest of the shared partition's logical state
    /// (metadata + bytes; locks and counters excluded). Two worlds with
    /// equal digests relink identically.
    pub fn shared_digest(&self) -> u64 {
        self.kernel.vfs.shared.fs.state_digest()
    }

    /// Boot-time `fsck`: after the address-table scan, check the shared
    /// partition for residual crash damage and self-heal it before the
    /// first map, surfacing each repair as an [`TraceEvent::FsckRepaired`]
    /// record (at zero cost — administrative work is not billed to
    /// guests; the address-table counters the check perturbs are
    /// restored afterward, so simulated time is unchanged).
    fn fsck_at_boot(&mut self) {
        let sfs = &mut self.kernel.vfs.shared;
        let (lookups, probes) = (sfs.addr_lookups, sfs.addr_probe_steps);
        let fs_stats = sfs.fs.stats;
        let issues = hsfs::tools::fsck_boot(sfs);
        for issue in &issues {
            let verdict = hsfs::tools::fsck_repair(&mut self.kernel.vfs.shared, issue);
            // Corrupt blocks get the full integrity bookkeeping: typed
            // trace records and counters, with successful heals priced
            // like a scrub repair (the scan itself rides fsck for free).
            if let hsfs::tools::FsckIssue::CorruptBlock {
                ino,
                offset,
                reason,
            } = issue
            {
                self.corruptions_detected += 1;
                self.trace.record(
                    0,
                    0,
                    TraceEvent::CorruptionDetected {
                        ino: *ino,
                        block: *offset,
                        reason,
                    },
                );
                if let hsfs::tools::RepairVerdict::Repaired(ref d) = verdict {
                    self.blocks_repaired += 1;
                    let source = if d.ends_with("replica") {
                        "replica"
                    } else {
                        "journal"
                    };
                    self.trace.record(
                        0,
                        self.costs.repair_ns,
                        TraceEvent::BlockRepaired {
                            ino: *ino,
                            block: *offset,
                            source,
                        },
                    );
                }
            }
            let detail = match verdict {
                hsfs::tools::RepairVerdict::Repaired(d) => d,
                hsfs::tools::RepairVerdict::Unrepaired(d) => format!("UNREPAIRED: {d}"),
            };
            self.log.push(format!("fsck: {detail}"));
            self.trace.record(0, 0, TraceEvent::FsckRepaired { detail });
        }
        let sfs = &mut self.kernel.vfs.shared;
        sfs.addr_lookups = lookups;
        sfs.addr_probe_steps = probes;
        sfs.fs.stats = fs_stats;
    }

    /// Enumerates every shared segment, annotated with whether it is a
    /// linked module (has linker metadata) and its exported symbols —
    /// the "peruse all of the segments in existence" facility of §5,
    /// module-aware.
    pub fn list_segments(&mut self) -> Vec<(hsfs::tools::SegmentInfo, Option<Vec<String>>)> {
        let infos = hsfs::tools::list_segments(&mut self.kernel.vfs.shared);
        infos
            .into_iter()
            .map(|info| {
                let exports = self
                    .registry
                    .get(&mut self.kernel.vfs, info.ino)
                    .map(|m| m.exports.iter().map(|(n, _)| n.clone()).collect());
                (info, exports)
            })
            .collect()
    }

    // --- inspection helpers ---

    /// Reads the word at an exported symbol of a public module instance.
    pub fn peek_shared_word(
        &mut self,
        instance_path: &str,
        symbol: &str,
    ) -> Result<u32, WorldError> {
        let v = self.kernel.vfs.resolve(instance_path)?;
        let meta = self
            .registry
            .get(&mut self.kernel.vfs, v.ino)
            .ok_or_else(|| WorldError::NoSuchSymbol(symbol.to_string()))?;
        let addr = meta
            .find_export(symbol)
            .ok_or_else(|| WorldError::NoSuchSymbol(symbol.to_string()))?;
        let off = (addr - meta.base) as usize;
        let bytes = self.kernel.vfs.shared.fs.file_bytes(v.ino)?;
        // A crash can recover the instance with its metadata committed
        // but its content still short of this symbol's slot.
        let word = bytes
            .get(off..off + 4)
            .ok_or_else(|| WorldError::NoSuchSymbol(symbol.to_string()))?;
        Ok(u32::from_le_bytes(word.try_into().unwrap()))
    }

    /// Writes the word at an exported symbol of a public module instance.
    pub fn poke_shared_word(
        &mut self,
        instance_path: &str,
        symbol: &str,
        value: u32,
    ) -> Result<(), WorldError> {
        let v = self.kernel.vfs.resolve(instance_path)?;
        let meta = self
            .registry
            .get(&mut self.kernel.vfs, v.ino)
            .ok_or_else(|| WorldError::NoSuchSymbol(symbol.to_string()))?;
        let addr = meta
            .find_export(symbol)
            .ok_or_else(|| WorldError::NoSuchSymbol(symbol.to_string()))?;
        let off = addr as usize - meta.base as usize;
        let bytes = self.kernel.vfs.shared.fs.file_bytes_mut(v.ino)?;
        let slot = bytes
            .get_mut(off..off + 4)
            .ok_or_else(|| WorldError::NoSuchSymbol(symbol.to_string()))?;
        slot.copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Gathers all counters for the cost model.
    pub fn stats(&self) -> WorldStats {
        let mut cow = self.reaped_cow + self.kernel.stats.cow_copies;
        let mut tlb_hits = self.kernel.stats.tlb_hits;
        let mut tlb_misses = self.kernel.stats.tlb_misses;
        for p in self.kernel.procs.values() {
            cow += p.aspace.stats.cow_copies;
            tlb_hits += p.aspace.stats.tlb_hits;
            tlb_misses += p.aspace.stats.tlb_misses;
        }
        let mut ldl = self.reaped_ldl;
        for s in self.link.values() {
            ldl.absorb(&s.stats);
        }
        let (races_detected, sync_edges, shadow_bytes) = match &self.sanitizer {
            Some(san) => {
                let s = san.lock().unwrap();
                (s.races_detected(), s.sync_edges(), s.shadow_bytes())
            }
            None => (0, 0, 0),
        };
        let pool = self.kernel.frame_pool().stats();
        let bb = self.kernel.bb_stats();
        WorldStats {
            kernel: self.kernel.stats,
            root_fs: self.kernel.vfs.root.stats,
            shared_fs: self.kernel.vfs.shared.fs.stats,
            addr_lookups: self.kernel.vfs.shared.addr_lookups,
            addr_probe_steps: self.kernel.vfs.shared.addr_probe_steps,
            ldl,
            cow_copies: cow,
            tlb_hits,
            tlb_misses,
            faults_injected: self.faults.injected(),
            faults_recovered: self.recovered,
            races_detected,
            sync_edges,
            shadow_bytes,
            page_evictions: pool.evictions,
            page_writebacks: pool.writebacks,
            swap_outs: pool.swap_outs,
            swap_ins: pool.swap_ins,
            resident_frames: pool.resident,
            peak_resident_frames: pool.peak_resident,
            frame_budget: pool.capacity,
            oom_kills: pool.oom_kills,
            shootdowns: self.kernel.stats.shootdowns,
            ipis: self.kernel.stats.ipis,
            cross_cpu_steals: self.kernel.stats.cross_cpu_steals,
            bblocks_built: bb.built,
            bblock_hits: bb.hits,
            bblock_invalidations: bb.invalidations,
            crashes: self.crashes,
            journal_replays: self.journal_replays,
            blocks_discarded: self.blocks_discarded,
            recovery_ns: self.recovery_ns,
            blocks_scrubbed: self.blocks_scrubbed,
            corruptions_detected: self.corruptions_detected,
            blocks_repaired: self.blocks_repaired,
            eio_kills: self.eio_kills,
            snapshot_hits: ldl.snapshot_hits,
            snapshot_misses: ldl.snapshot_misses,
            snapshot_invalidations: ldl.snapshot_invalidations,
            snapshot_rebuilds: ldl.snapshot_rebuilds,
        }
    }
}

enum HeapOp {
    Init,
    Alloc,
    Free,
}

fn err_code(e: &LinkError) -> i32 {
    match e {
        LinkError::Fs(fs) => -fs.errno(),
        LinkError::AccessDenied { .. } => -13,
        _ => -14,
    }
}
