//! `htrace` — a bounded ring buffer of structured fault-path events.
//!
//! The paper's central mechanism is invisible when it works: a program
//! touches an unmapped shared segment, the kernel turns the SIGSEGV into
//! a user-level fault, `ldl` translates the address to a file, maps the
//! segment, resolves symbols, and the instruction restarts — all between
//! two guest instructions. This module records that protocol as explicit
//! events so tests can assert the sequence and humans can read it when
//! an experiment (E6 in particular) misbehaves.
//!
//! Every record carries the simulated-time cost of its step, taken from
//! the [`crate::CostModel`] constants, so a dump doubles as a cost
//! breakdown of the fault path.

use hkernel::Pid;
use std::collections::VecDeque;
use std::fmt;

/// Default capacity of a [`TraceBuffer`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// One step of the fault→translate→map→resolve→restart protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A SIGSEGV-class fault reached the user-level handler.
    FaultTaken {
        /// The faulting address.
        addr: u32,
    },
    /// The kernel's address→file translation named the segment.
    AddrTranslated {
        /// The translated address.
        addr: u32,
        /// The shared-partition path it names.
        path: String,
    },
    /// A segment was mapped into the faulting process.
    SegmentMapped {
        /// Base virtual address of the mapping.
        base: u32,
        /// Module name for module segments, `None` for plain segments.
        module: Option<String>,
    },
    /// The lazy linker resolved one symbol.
    SymbolResolved {
        /// The module whose reference was patched.
        module: String,
        /// The symbol name.
        symbol: String,
        /// The resolved address.
        addr: u32,
    },
    /// The faulting instruction was restarted.
    InstructionRestarted {
        /// The address whose fault is now resolved.
        addr: u32,
    },
    /// The chaos layer injected a failure at a named site (see
    /// `hfault::FaultSite` and DESIGN.md §8).
    FaultInjected {
        /// Stable site name (`FaultSite::name()`).
        site: &'static str,
    },
    /// The world contained an injected (or injected-adjacent) failure:
    /// the victim was killed, the operation was retried to success, or
    /// the error was returned cleanly to the requester.
    RecoveryTaken {
        /// What recovery was taken (`killed-victim`, `ldl-retry`,
        /// `spawn-refused`).
        action: &'static str,
    },
    /// The armed sanitizer found two unordered accesses to overlapping
    /// bytes of a shared segment, at least one a write (DESIGN.md §9).
    RaceDetected {
        /// The shared-partition path of the raced segment.
        path: String,
        /// Byte offset of the first overlapping byte within the file.
        offset: u32,
        /// The earlier access: (pid, pc, is_write).
        first: (Pid, u32, bool),
        /// The later access that exposed the race.
        second: (Pid, u32, bool),
    },
    /// The sanitizer's lock-order graph acquired a cycle: a deadlock is
    /// possible even though this run survived.
    LockOrderCycle {
        /// The process whose acquisition closed the cycle.
        pid: Pid,
        /// Human-readable names of the locks on the cycle.
        chain: Vec<String>,
    },
    /// A store landed on a shared page whose *current* sfs mode denies
    /// the writer — the mapping predates a protection transition.
    ProtectionDrift {
        /// The shared-partition path of the written segment.
        path: String,
        /// Byte offset of the store.
        offset: u32,
        /// Effective uid that no longer has write permission.
        uid: u32,
    },
    /// The clock hand dropped a page from the bounded frame pool
    /// (DESIGN.md §10). Clean shared pages re-fault from their backing
    /// segment; anonymous pages went to the swap area first.
    PageEvicted {
        /// Virtual address of the evicted page.
        addr: u32,
        /// What was evicted: `shared-clean`, `shared-dirty`, `anon`.
        kind: &'static str,
    },
    /// A non-resident page was brought back — from the swap area
    /// (anonymous) or from its backing segment (shared, via the full
    /// fault→handler→map→restart protocol).
    PageSwappedIn {
        /// Virtual address of the repaged page.
        addr: u32,
    },
    /// A dirty shared page's bytes were flushed to its backing segment
    /// before the frame was dropped.
    WritebackTaken {
        /// Virtual address of the written-back page.
        addr: u32,
    },
    /// Boot-time `fsck` of the shared partition repaired an
    /// inconsistency before the first map (DESIGN.md §10).
    FsckRepaired {
        /// Human-readable description of the repaired issue.
        detail: String,
    },
    /// Eviction-path reclaim invalidated translations cached by a
    /// remote CPU: an IPI crossed the interconnect and the remote TLB
    /// dropped the affected entries (DESIGN.md §11).
    TlbShootdown {
        /// The CPU that initiated the invalidation (the boot CPU, where
        /// round-boundary reclaim runs).
        from_cpu: u32,
        /// The CPU whose TLB was shot down.
        to_cpu: u32,
        /// First virtual address invalidated.
        addr: u32,
        /// Number of pages invalidated by this shootdown.
        pages: u32,
        /// Whether chaos dropped the first IPI, forcing (and billing) a
        /// retransmission.
        retried: bool,
    },
    /// An idle CPU stole a runnable process from its home CPU at a
    /// round boundary; the context arrives with a cold TLB.
    CpuSteal {
        /// The CPU that took the process.
        cpu: u32,
        /// The CPU the process last ran on.
        from_cpu: u32,
    },
    /// The machine lost power (DESIGN.md §13): every process died, all
    /// volatile kernel state was dropped, and any disk write not yet
    /// flushed by a barrier was discarded.
    CrashTaken {
        /// Disk block writes discarded by the cut (the un-flushed
        /// suffix of the write pipeline).
        blocks_discarded: u64,
    },
    /// Reboot replayed the metadata write-ahead journal onto the
    /// surviving disk image before the boot scan.
    JournalReplayed {
        /// Journal records replayed (committed, checksum-valid prefix).
        records: u64,
        /// Data-block images among them (the rest are metadata).
        blocks: u64,
    },
    /// End-to-end verification found a block whose on-medium bytes do
    /// not match the checksum region (DESIGN.md §14) — bit rot, a lost
    /// write, or a misdirected write reached the platter silently.
    CorruptionDetected {
        /// The damaged file's inode.
        ino: u32,
        /// Block-aligned byte offset within the file.
        block: u64,
        /// Detection signature (`"checksum"` or `"address-stamp"`).
        reason: &'static str,
    },
    /// A corrupt block was healed in place from an intact copy.
    BlockRepaired {
        /// The healed file's inode.
        ino: u32,
        /// Block-aligned byte offset within the file.
        block: u64,
        /// Where the good bytes came from (`"replica"` or `"journal"`).
        source: &'static str,
    },
    /// One deterministic scrub pass over the shared partition completed
    /// (explicit `World::scrub` or the every-N-slices kernel hook).
    ScrubPass {
        /// Stamped blocks verified.
        blocks: u64,
        /// Corrupt blocks found this pass.
        corrupt: u64,
        /// How many of those were healed (the rest are contained by
        /// poisoning — reads fail typed, maps raise `Eio`).
        repaired: u64,
    },
    /// A prelink snapshot validated and was applied: the whole link map
    /// was restored without export-index search or trampoline synthesis
    /// (DESIGN.md §15). Billed at `snapshot_validate_ns`.
    SnapshotHit {
        /// The executable whose snapshot hit.
        exe: String,
        /// Modules mapped pre-resolved from the snapshot.
        modules: u32,
    },
    /// No snapshot existed for the executable; full resolution ran.
    /// Free — a cold boot with snapshots enabled costs exactly what a
    /// snapshots-off boot costs.
    SnapshotMiss {
        /// The executable that missed.
        exe: String,
    },
    /// A snapshot existed but failed validation — stale module content,
    /// changed scope, a reassigned address, or corrupt bytes. Billed at
    /// `snapshot_validate_ns`; full resolution follows.
    SnapshotInvalidated {
        /// The executable whose snapshot was rejected.
        exe: String,
        /// Why validation failed.
        why: String,
    },
    /// A fresh snapshot was written (through the WAL pipeline) after a
    /// successful resolve. Free — rebuilds ride the link that already
    /// paid full price.
    SnapshotRebuilt {
        /// The executable whose snapshot was rebuilt.
        exe: String,
        /// Modules recorded in the new snapshot.
        modules: u32,
    },
    /// A TLB-parity event dropped decoded basic blocks from a process's
    /// block cache (DESIGN.md §12). Pure host-speed diagnostics: zero
    /// cost, and emitted only when blocks were actually dropped (a
    /// cache-off run records none).
    BlockInvalidated {
        /// First affected virtual address (page-aligned; 0 for
        /// whole-cache events like fork or migration).
        addr: u32,
        /// Decoded blocks dropped by this event.
        blocks: u64,
        /// Which invalidation edge fired (`"unmap"`, `"mprotect"`,
        /// `"evict"`, `"fork"`, `"migrate"`, `"store-exec"`, ...).
        cause: &'static str,
    },
}

impl TraceEvent {
    /// Short tag for dumps and coarse assertions.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::FaultTaken { .. } => "FaultTaken",
            TraceEvent::AddrTranslated { .. } => "AddrTranslated",
            TraceEvent::SegmentMapped { .. } => "SegmentMapped",
            TraceEvent::SymbolResolved { .. } => "SymbolResolved",
            TraceEvent::InstructionRestarted { .. } => "InstructionRestarted",
            TraceEvent::FaultInjected { .. } => "FaultInjected",
            TraceEvent::RecoveryTaken { .. } => "RecoveryTaken",
            TraceEvent::RaceDetected { .. } => "RaceDetected",
            TraceEvent::LockOrderCycle { .. } => "LockOrderCycle",
            TraceEvent::ProtectionDrift { .. } => "ProtectionDrift",
            TraceEvent::PageEvicted { .. } => "PageEvicted",
            TraceEvent::PageSwappedIn { .. } => "PageSwappedIn",
            TraceEvent::WritebackTaken { .. } => "WritebackTaken",
            TraceEvent::FsckRepaired { .. } => "FsckRepaired",
            TraceEvent::CrashTaken { .. } => "CrashTaken",
            TraceEvent::JournalReplayed { .. } => "JournalReplayed",
            TraceEvent::TlbShootdown { .. } => "TlbShootdown",
            TraceEvent::CpuSteal { .. } => "CpuSteal",
            TraceEvent::CorruptionDetected { .. } => "CorruptionDetected",
            TraceEvent::BlockRepaired { .. } => "BlockRepaired",
            TraceEvent::ScrubPass { .. } => "ScrubPass",
            TraceEvent::SnapshotHit { .. } => "SnapshotHit",
            TraceEvent::SnapshotMiss { .. } => "SnapshotMiss",
            TraceEvent::SnapshotInvalidated { .. } => "SnapshotInvalidated",
            TraceEvent::SnapshotRebuilt { .. } => "SnapshotRebuilt",
            TraceEvent::BlockInvalidated { .. } => "BlockInvalidated",
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::FaultTaken { addr } => write!(f, "FaultTaken addr={addr:#010x}"),
            TraceEvent::AddrTranslated { addr, path } => {
                write!(f, "AddrTranslated addr={addr:#010x} path={path}")
            }
            TraceEvent::SegmentMapped { base, module } => match module {
                Some(m) => write!(f, "SegmentMapped base={base:#010x} module={m}"),
                None => write!(f, "SegmentMapped base={base:#010x} (plain segment)"),
            },
            TraceEvent::SymbolResolved {
                module,
                symbol,
                addr,
            } => {
                write!(f, "SymbolResolved {module}::{symbol} -> {addr:#010x}")
            }
            TraceEvent::InstructionRestarted { addr } => {
                write!(f, "InstructionRestarted addr={addr:#010x}")
            }
            TraceEvent::FaultInjected { site } => write!(f, "FaultInjected site={site}"),
            TraceEvent::RecoveryTaken { action } => write!(f, "RecoveryTaken action={action}"),
            TraceEvent::RaceDetected {
                path,
                offset,
                first,
                second,
            } => {
                let rw = |w: bool| if w { "W" } else { "R" };
                write!(
                    f,
                    "RaceDetected {path}+{offset:#x} pid {} {}@{:#010x} vs pid {} {}@{:#010x}",
                    first.0,
                    rw(first.2),
                    first.1,
                    second.0,
                    rw(second.2),
                    second.1
                )
            }
            TraceEvent::LockOrderCycle { pid, chain } => {
                write!(f, "LockOrderCycle pid {} via {}", pid, chain.join(" -> "))
            }
            TraceEvent::ProtectionDrift { path, offset, uid } => {
                write!(f, "ProtectionDrift {path}+{offset:#x} uid={uid}")
            }
            TraceEvent::PageEvicted { addr, kind } => {
                write!(f, "PageEvicted addr={addr:#010x} kind={kind}")
            }
            TraceEvent::PageSwappedIn { addr } => {
                write!(f, "PageSwappedIn addr={addr:#010x}")
            }
            TraceEvent::WritebackTaken { addr } => {
                write!(f, "WritebackTaken addr={addr:#010x}")
            }
            TraceEvent::FsckRepaired { detail } => write!(f, "FsckRepaired {detail}"),
            TraceEvent::CrashTaken { blocks_discarded } => {
                write!(f, "CrashTaken blocks_discarded={blocks_discarded}")
            }
            TraceEvent::JournalReplayed { records, blocks } => {
                write!(f, "JournalReplayed records={records} blocks={blocks}")
            }
            TraceEvent::TlbShootdown {
                from_cpu,
                to_cpu,
                addr,
                pages,
                retried,
            } => {
                write!(
                    f,
                    "TlbShootdown cpu{from_cpu}->cpu{to_cpu} addr={addr:#010x} pages={pages}{}",
                    if *retried { " (retried)" } else { "" }
                )
            }
            TraceEvent::CpuSteal { cpu, from_cpu } => {
                write!(f, "CpuSteal cpu{cpu} <- cpu{from_cpu}")
            }
            TraceEvent::CorruptionDetected { ino, block, reason } => {
                write!(
                    f,
                    "CorruptionDetected ino={ino} block={block} reason={reason}"
                )
            }
            TraceEvent::BlockRepaired { ino, block, source } => {
                write!(f, "BlockRepaired ino={ino} block={block} source={source}")
            }
            TraceEvent::ScrubPass {
                blocks,
                corrupt,
                repaired,
            } => {
                write!(
                    f,
                    "ScrubPass blocks={blocks} corrupt={corrupt} repaired={repaired}"
                )
            }
            TraceEvent::SnapshotHit { exe, modules } => {
                write!(f, "SnapshotHit exe={exe} modules={modules}")
            }
            TraceEvent::SnapshotMiss { exe } => write!(f, "SnapshotMiss exe={exe}"),
            TraceEvent::SnapshotInvalidated { exe, why } => {
                write!(f, "SnapshotInvalidated exe={exe} why={why}")
            }
            TraceEvent::SnapshotRebuilt { exe, modules } => {
                write!(f, "SnapshotRebuilt exe={exe} modules={modules}")
            }
            TraceEvent::BlockInvalidated {
                addr,
                blocks,
                cause,
            } => {
                write!(
                    f,
                    "BlockInvalidated addr={addr:#010x} blocks={blocks} cause={cause}"
                )
            }
        }
    }
}

/// A recorded event with its context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotonic sequence number (never reused, survives eviction).
    pub seq: u64,
    /// The process the event belongs to.
    pub pid: Pid,
    /// Simulated-nanosecond cost of this step (cost-model units).
    pub cost_ns: u64,
    /// The event.
    pub event: TraceEvent,
}

/// A bounded ring of [`TraceRecord`]s; the oldest records are evicted
/// once the capacity is reached.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    next_seq: u64,
    evicted: u64,
}

impl Default for TraceBuffer {
    fn default() -> TraceBuffer {
        TraceBuffer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceBuffer {
    /// An empty buffer holding at most `capacity` records.
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            records: VecDeque::with_capacity(capacity.min(DEFAULT_TRACE_CAPACITY)),
            capacity: capacity.max(1),
            next_seq: 0,
            evicted: 0,
        }
    }

    /// Appends a record, evicting the oldest if full.
    pub fn record(&mut self, pid: Pid, cost_ns: u64, event: TraceEvent) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.evicted += 1;
        }
        self.records.push_back(TraceRecord {
            seq: self.next_seq,
            pid,
            cost_ns,
            event,
        });
        self.next_seq += 1;
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Retained records for one process, oldest first.
    pub fn records_for(&self, pid: Pid) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.pid == pid)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The buffer's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records evicted by the ring since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Drops all retained records (sequence numbers keep counting).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Renders the retained records as a text table for debugging.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.evicted > 0 {
            out.push_str(&format!("... {} older records evicted ...\n", self.evicted));
        }
        for r in &self.records {
            out.push_str(&format!(
                "[{:>6}] pid {:<3} +{:>8} ns  {}\n",
                r.seq, r.pid, r.cost_ns, r.event
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut t = TraceBuffer::new(2);
        t.record(1, 10, TraceEvent::FaultTaken { addr: 0x100 });
        t.record(1, 20, TraceEvent::InstructionRestarted { addr: 0x100 });
        t.record(1, 30, TraceEvent::FaultTaken { addr: 0x200 });
        assert_eq!(t.len(), 2);
        assert_eq!(t.evicted(), 1);
        let seqs: Vec<u64> = t.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn per_pid_filter_and_dump() {
        let mut t = TraceBuffer::new(8);
        t.record(1, 120_000, TraceEvent::FaultTaken { addr: 0x3000_0000 });
        t.record(
            2,
            5_000,
            TraceEvent::AddrTranslated {
                addr: 0x3000_0000,
                path: "/shared/db".into(),
            },
        );
        assert_eq!(t.records_for(1).count(), 1);
        assert_eq!(t.records_for(2).count(), 1);
        let dump = t.dump();
        assert!(dump.contains("FaultTaken addr=0x30000000"));
        assert!(dump.contains("/shared/db"));
    }

    /// Exactly-capacity fill: nothing is evicted, ordering is oldest
    /// first, and the dump carries no eviction banner.
    #[test]
    fn exactly_capacity_keeps_everything_in_order() {
        let cap = 5;
        let mut t = TraceBuffer::new(cap);
        for i in 0..cap as u32 {
            t.record(1, u64::from(i), TraceEvent::FaultTaken { addr: i * 16 });
        }
        assert_eq!(t.len(), cap);
        assert_eq!(t.evicted(), 0);
        let seqs: Vec<u64> = t.records().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..cap as u64).collect::<Vec<_>>());
        let dump = t.dump();
        assert!(!dump.contains("evicted"), "no banner at exact capacity");
        // Rows appear oldest-first in the dump.
        let first = dump.find("addr=0x00000000").unwrap();
        let last = dump.find("addr=0x00000040").unwrap();
        assert!(first < last);
    }

    /// Over-capacity: the ring wraps, seq numbers stay monotonic and
    /// gap-free across the wrap, and the dump reports the eviction count.
    #[test]
    fn over_capacity_wraps_with_monotonic_seq_and_banner() {
        let cap = 4;
        let total = 11u64;
        let mut t = TraceBuffer::new(cap);
        for i in 0..total {
            t.record(
                (i % 3 + 1) as hkernel::Pid,
                i,
                TraceEvent::FaultTaken { addr: i as u32 },
            );
        }
        assert_eq!(t.len(), cap);
        assert_eq!(t.evicted(), total - cap as u64);
        let seqs: Vec<u64> = t.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10], "newest `cap` records survive");
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
        let dump = t.dump();
        assert!(dump.contains("... 7 older records evicted ..."));
        // The dump lists survivors oldest-first after the banner.
        let banner = dump.find("evicted").unwrap();
        let first_row = dump.find("[     7]").unwrap();
        assert!(banner < first_row);
    }

    #[test]
    fn chaos_event_pair_renders() {
        let mut t = TraceBuffer::new(4);
        t.record(
            3,
            0,
            TraceEvent::FaultInjected {
                site: "inode_alloc",
            },
        );
        t.record(
            3,
            0,
            TraceEvent::RecoveryTaken {
                action: "killed-victim",
            },
        );
        let dump = t.dump();
        assert!(dump.contains("FaultInjected site=inode_alloc"));
        assert!(dump.contains("RecoveryTaken action=killed-victim"));
        assert_eq!(
            TraceEvent::FaultInjected { site: "x" }.kind(),
            "FaultInjected"
        );
        assert_eq!(
            TraceEvent::RecoveryTaken { action: "x" }.kind(),
            "RecoveryTaken"
        );
    }

    #[test]
    fn integrity_events_render() {
        let mut t = TraceBuffer::new(4);
        t.record(
            0,
            0,
            TraceEvent::CorruptionDetected {
                ino: 3,
                block: 4096,
                reason: "address-stamp",
            },
        );
        t.record(
            0,
            4_000_000,
            TraceEvent::BlockRepaired {
                ino: 3,
                block: 4096,
                source: "replica",
            },
        );
        t.record(
            0,
            0,
            TraceEvent::ScrubPass {
                blocks: 12,
                corrupt: 1,
                repaired: 1,
            },
        );
        let dump = t.dump();
        assert!(dump.contains("CorruptionDetected ino=3 block=4096 reason=address-stamp"));
        assert!(dump.contains("BlockRepaired ino=3 block=4096 source=replica"));
        assert!(dump.contains("ScrubPass blocks=12 corrupt=1 repaired=1"));
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(TraceEvent::FaultTaken { addr: 0 }.kind(), "FaultTaken");
        assert_eq!(
            TraceEvent::SegmentMapped {
                base: 0,
                module: None
            }
            .kind(),
            "SegmentMapped"
        );
    }
}
