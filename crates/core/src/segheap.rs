//! Per-segment heaps: the dynamic storage-management package of §5.
//!
//! "We have developed a package designed to allocate space from the heaps
//! associated with individual segments, instead of a heap associated with
//! the calling program. This package is used by the Hemlock version of
//! xfig."
//!
//! The allocator's entire state lives *inside the segment*, so it is
//! shared by every process that maps the segment and persists with the
//! file: a header followed by a singly linked free list, with all links
//! stored as absolute virtual addresses — valid in every protection
//! domain because the shared file system gives the segment the same
//! address everywhere. Free blocks are coalesced with their successors.
//!
//! Layout (all words little-endian, offsets from the heap region start):
//!
//! ```text
//! +0   magic "HHP1"
//! +4   region length in bytes
//! +8   free-list head (absolute address, 0 = empty)
//! +12  first block
//! block: +0 length (bytes, including header), +4 next-free (abs, 0=end)
//! ```

/// Heap header magic.
pub const HEAP_MAGIC: u32 = 0x3150_4848; // "HHP1"
/// Bytes of heap header.
pub const HEADER_BYTES: u32 = 12;
/// Per-block header bytes.
pub const BLOCK_HEADER: u32 = 8;
/// Allocation granularity.
pub const GRAIN: u32 = 8;

/// Errors from segment-heap operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeapError {
    /// The region does not contain an initialized heap.
    NotAHeap,
    /// The region is too small to initialize.
    TooSmall,
    /// No free block large enough.
    OutOfMemory,
    /// A pointer passed to `free` is not a live allocation from this
    /// heap.
    BadPointer,
    /// The heap's internal structure is corrupt.
    Corrupt,
}

fn rd(buf: &[u8], off: u32) -> u32 {
    let o = off as usize;
    u32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]])
}

fn wr(buf: &mut [u8], off: u32, v: u32) {
    let o = off as usize;
    buf[o..o + 4].copy_from_slice(&v.to_le_bytes());
}

/// A view of a segment-resident heap.
///
/// `base` is the virtual address of `buf[0]` — the allocator stores
/// absolute addresses, so pointers it returns can be written into shared
/// data structures and dereferenced by any process.
pub struct SegHeap<'a> {
    buf: &'a mut [u8],
    base: u32,
}

impl<'a> SegHeap<'a> {
    /// Initializes a fresh heap over `buf` (which starts at virtual
    /// address `base`).
    pub fn init(buf: &'a mut [u8], base: u32) -> Result<SegHeap<'a>, HeapError> {
        let len = buf.len() as u32;
        if len < HEADER_BYTES + BLOCK_HEADER + GRAIN {
            return Err(HeapError::TooSmall);
        }
        wr(buf, 0, HEAP_MAGIC);
        wr(buf, 4, len);
        let first = HEADER_BYTES;
        wr(buf, 8, base + first);
        wr(buf, first, len - first); // block length
        wr(buf, first + 4, 0); // next
        Ok(SegHeap { buf, base })
    }

    /// Attaches to an already-initialized heap.
    pub fn attach(buf: &'a mut [u8], base: u32) -> Result<SegHeap<'a>, HeapError> {
        if buf.len() < HEADER_BYTES as usize || rd(buf, 0) != HEAP_MAGIC {
            return Err(HeapError::NotAHeap);
        }
        if rd(buf, 4) as usize > buf.len() {
            return Err(HeapError::Corrupt);
        }
        Ok(SegHeap { buf, base })
    }

    fn to_off(&self, addr: u32) -> Result<u32, HeapError> {
        let len = rd(self.buf, 4);
        if addr < self.base || addr >= self.base + len {
            return Err(HeapError::BadPointer);
        }
        Ok(addr - self.base)
    }

    /// Allocates `size` bytes; returns the *absolute address* of the
    /// usable bytes. First-fit with block splitting.
    pub fn alloc(&mut self, size: u32) -> Result<u32, HeapError> {
        let need = (size.max(1).div_ceil(GRAIN) * GRAIN) + BLOCK_HEADER;
        let mut prev: Option<u32> = None; // offset of previous free block
        let mut cur_addr = rd(self.buf, 8);
        let mut hops = 0;
        while cur_addr != 0 {
            let cur = self.to_off(cur_addr)?;
            let blen = rd(self.buf, cur);
            let next = rd(self.buf, cur + 4);
            if blen >= need {
                let remainder = blen - need;
                let successor = if remainder >= BLOCK_HEADER + GRAIN {
                    // Split: the tail remains free.
                    let tail = cur + need;
                    wr(self.buf, cur, need);
                    wr(self.buf, tail, remainder);
                    wr(self.buf, tail + 4, next);
                    self.base + tail
                } else {
                    next
                };
                match prev {
                    Some(p) => wr(self.buf, p + 4, successor),
                    None => wr(self.buf, 8, successor),
                }
                // Mark allocated: next field doubles as an in-use tag.
                wr(self.buf, cur + 4, u32::MAX);
                return Ok(self.base + cur + BLOCK_HEADER);
            }
            prev = Some(cur);
            cur_addr = next;
            hops += 1;
            if hops > 1_000_000 {
                return Err(HeapError::Corrupt);
            }
        }
        Err(HeapError::OutOfMemory)
    }

    /// Frees an allocation by its absolute address, coalescing with the
    /// following block when it is free.
    pub fn free(&mut self, addr: u32) -> Result<(), HeapError> {
        let data_off = self.to_off(addr)?;
        if data_off < HEADER_BYTES + BLOCK_HEADER {
            return Err(HeapError::BadPointer);
        }
        let block = data_off - BLOCK_HEADER;
        if rd(self.buf, block + 4) != u32::MAX {
            return Err(HeapError::BadPointer);
        }
        let blen = rd(self.buf, block);
        let region_len = rd(self.buf, 4);
        if blen < BLOCK_HEADER || block + blen > region_len {
            return Err(HeapError::Corrupt);
        }
        // Insert at the free-list position sorted by address so
        // coalescing is a local check.
        let mut prev: Option<u32> = None;
        let mut cur_addr = rd(self.buf, 8);
        while cur_addr != 0 {
            let cur = self.to_off(cur_addr)?;
            if cur > block {
                break;
            }
            prev = Some(cur);
            cur_addr = rd(self.buf, cur + 4);
        }
        // Link in.
        let mut new_len = blen;
        let mut next_field = cur_addr;
        // Coalesce forward.
        if cur_addr != 0 {
            let cur = self.to_off(cur_addr)?;
            if block + blen == cur {
                new_len += rd(self.buf, cur);
                next_field = rd(self.buf, cur + 4);
            }
        }
        wr(self.buf, block, new_len);
        wr(self.buf, block + 4, next_field);
        match prev {
            Some(p) => {
                // Coalesce backward.
                let plen = rd(self.buf, p);
                if p + plen == block {
                    wr(self.buf, p, plen + new_len);
                    wr(self.buf, p + 4, next_field);
                } else {
                    wr(self.buf, p + 4, self.base + block);
                }
            }
            None => wr(self.buf, 8, self.base + block),
        }
        Ok(())
    }

    /// Total free bytes (walks the free list).
    pub fn free_bytes(&self) -> Result<u32, HeapError> {
        let mut total = 0;
        let mut cur_addr = rd(self.buf, 8);
        let mut hops = 0;
        while cur_addr != 0 {
            let cur = self.to_off(cur_addr)?;
            total += rd(self.buf, cur);
            cur_addr = rd(self.buf, cur + 4);
            hops += 1;
            if hops > 1_000_000 {
                return Err(HeapError::Corrupt);
            }
        }
        Ok(total)
    }

    /// Direct access to the heap's backing bytes — for writing payloads
    /// at offsets derived from addresses returned by [`SegHeap::alloc`].
    pub fn raw_region(&mut self) -> &mut [u8] {
        self.buf
    }

    /// Number of free blocks (fragmentation measure).
    pub fn free_blocks(&self) -> Result<u32, HeapError> {
        let mut n = 0;
        let mut cur_addr = rd(self.buf, 8);
        while cur_addr != 0 {
            n += 1;
            cur_addr = rd(self.buf, self.to_off(cur_addr)? + 4);
            if n > 1_000_000 {
                return Err(HeapError::Corrupt);
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const BASE: u32 = 0x3010_0000;

    fn heap_buf(len: usize) -> Vec<u8> {
        vec![0u8; len]
    }

    #[test]
    fn init_and_alloc() {
        let mut buf = heap_buf(4096);
        let mut h = SegHeap::init(&mut buf, BASE).unwrap();
        let a = h.alloc(16).unwrap();
        let b = h.alloc(16).unwrap();
        assert_ne!(a, b);
        assert!(a >= BASE + HEADER_BYTES + BLOCK_HEADER);
        assert!(b > a);
    }

    #[test]
    fn too_small_region_rejected() {
        let mut buf = heap_buf(8);
        assert_eq!(
            SegHeap::init(&mut buf, BASE).err(),
            Some(HeapError::TooSmall)
        );
    }

    #[test]
    fn attach_requires_magic() {
        let mut buf = heap_buf(128);
        assert_eq!(
            SegHeap::attach(&mut buf, BASE).err(),
            Some(HeapError::NotAHeap)
        );
        SegHeap::init(&mut buf, BASE).unwrap();
        assert!(SegHeap::attach(&mut buf, BASE).is_ok());
    }

    #[test]
    fn state_persists_across_attach() {
        // Two "processes" attach in turn; allocations persist, exactly
        // like a segment mapped by different programs over time.
        let mut buf = heap_buf(1024);
        let a;
        {
            let mut h = SegHeap::init(&mut buf, BASE).unwrap();
            a = h.alloc(100).unwrap();
        }
        {
            let mut h = SegHeap::attach(&mut buf, BASE).unwrap();
            let b = h.alloc(100).unwrap();
            assert_ne!(a, b);
            h.free(a).unwrap();
        }
        {
            let mut h = SegHeap::attach(&mut buf, BASE).unwrap();
            // The freed block is reusable.
            let c = h.alloc(100).unwrap();
            assert_eq!(c, a);
        }
    }

    #[test]
    fn free_coalesces() {
        let mut buf = heap_buf(4096);
        let mut h = SegHeap::init(&mut buf, BASE).unwrap();
        let initial = h.free_bytes().unwrap();
        let a = h.alloc(64).unwrap();
        let b = h.alloc(64).unwrap();
        let c = h.alloc(64).unwrap();
        h.free(b).unwrap();
        h.free(a).unwrap(); // backward coalesce with b
        h.free(c).unwrap(); // forward coalesce with the tail
        assert_eq!(h.free_bytes().unwrap(), initial);
        assert_eq!(h.free_blocks().unwrap(), 1, "fully coalesced");
    }

    #[test]
    fn double_free_rejected() {
        let mut buf = heap_buf(1024);
        let mut h = SegHeap::init(&mut buf, BASE).unwrap();
        let a = h.alloc(32).unwrap();
        h.free(a).unwrap();
        assert_eq!(h.free(a), Err(HeapError::BadPointer));
    }

    #[test]
    fn bogus_pointer_rejected() {
        let mut buf = heap_buf(1024);
        let mut h = SegHeap::init(&mut buf, BASE).unwrap();
        assert_eq!(h.free(0x1234), Err(HeapError::BadPointer));
        assert_eq!(h.free(BASE + 4), Err(HeapError::BadPointer));
    }

    #[test]
    fn exhaustion_and_recovery() {
        let mut buf = heap_buf(256);
        let mut h = SegHeap::init(&mut buf, BASE).unwrap();
        let mut ptrs = Vec::new();
        loop {
            match h.alloc(24) {
                Ok(p) => ptrs.push(p),
                Err(HeapError::OutOfMemory) => break,
                Err(e) => panic!("{e:?}"),
            }
        }
        assert!(!ptrs.is_empty());
        for p in &ptrs {
            h.free(*p).unwrap();
        }
        assert_eq!(h.free_blocks().unwrap(), 1);
    }

    proptest! {
        /// Random alloc/free interleavings never corrupt the heap, and a
        /// full free returns to one maximal block.
        #[test]
        fn alloc_free_invariants(ops in proptest::collection::vec((1u32..200, any::<bool>()), 1..60)) {
            let mut buf = heap_buf(8192);
            let mut h = SegHeap::init(&mut buf, BASE).unwrap();
            let initial = h.free_bytes().unwrap();
            let mut live: Vec<u32> = Vec::new();
            for (size, do_free) in ops {
                if do_free && !live.is_empty() {
                    let p = live.swap_remove(size as usize % live.len());
                    prop_assert_eq!(h.free(p), Ok(()));
                } else if let Ok(p) = h.alloc(size) {
                    // Returned storage must be disjoint from all live
                    // allocations (check via block headers).
                    prop_assert!(!live.contains(&p));
                    live.push(p);
                }
                prop_assert!(h.free_bytes().unwrap() <= initial);
            }
            for p in live {
                prop_assert_eq!(h.free(p), Ok(()));
            }
            prop_assert_eq!(h.free_bytes().unwrap(), initial);
            prop_assert_eq!(h.free_blocks().unwrap(), 1);
        }
    }
}
