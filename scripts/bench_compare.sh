#!/usr/bin/env bash
# Deterministic bench-regression gate.
#
# Runs every bench in crates/bench with BENCH_SIM_ONLY=1 (skipping
# wall-clock measurement — only the cost-model simulated-time tables
# run, which are exactly reproducible on any machine) and collects the
# per-row numbers emitted via BENCH_JSON_OUT into a JSON baseline:
#
#     { "<bench id>/<row label>": {"sim_ns":<n>}, ... }
#
# Rows are matched by the *structural* "bench" key of each emitted JSON
# line — labels are stable identifiers, and volatile observables
# (eviction counts, peak frames) travel in the separate "detail" field,
# which is carried into the baseline for humans but never participates
# in matching or comparison.
#
# If the baseline file (BENCH_2.json by default) is already committed,
# the row *sets* must match exactly in both directions — a baseline row
# with no current counterpart fails the gate, and so does a current row
# absent from the baseline (new rows must be committed deliberately by
# regenerating) — and a row that grew by more than BENCH_TOLERANCE
# percent (default 10) fails. The fresh results are then written to the
# baseline path — simulated time is deterministic, so the file only
# changes when the code's cost behavior actually changed, and `git diff`
# shows exactly which rows moved.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${BENCH_OUT:-BENCH_2.json}
TOL=${BENCH_TOLERANCE:-10}

jsonl=$(mktemp)
new_json=$(mktemp)
trap 'rm -f "$jsonl" "$new_json"' EXIT

echo "==> running benches (sim-only) ..."
BENCH_SIM_ONLY=1 BENCH_JSON_OUT="$jsonl" cargo bench -q -p bench >/dev/null

if ! [ -s "$jsonl" ]; then
    echo "bench_compare: benches emitted no rows" >&2
    exit 1
fi

# JSON-lines -> one sorted JSON object of per-row objects. Each input
# line is {"bench":"K","sim_ns":N[,"detail":"D"]}; split on '"' that
# makes the key $4, the detail (when present) $10.
LC_ALL=C sort "$jsonl" | awk -F'"' '
    {
        v = $0
        sub(/.*"sim_ns":/, "", v)
        sub(/[^0-9].*/, "", v)
        n += 1
        keys[n] = $4
        vals[n] = v
        dets[n] = ($8 == "detail") ? $10 : ""
    }
    END {
        print "{"
        for (i = 1; i <= n; i++) {
            line = "  \"" keys[i] "\": {\"sim_ns\":" vals[i]
            if (dets[i] != "")
                line = line ",\"detail\":\"" dets[i] "\""
            line = line "}" (i < n ? "," : "")
            print line
        }
        print "}"
    }' > "$new_json"

# "key<TAB>sim_ns" pairs from a baseline-format JSON object. Also
# accepts the legacy flat format ("key": 123) so an old committed
# baseline still gates the first run after this format change.
parse() {
    awk -F'"' '/"sim_ns":/ || /": *[0-9]+,?$/ {
        v = $0
        if (v ~ /"sim_ns":/)
            sub(/.*"sim_ns":/, "", v)
        else
            sub(/.*": */, "", v)
        sub(/[^0-9].*/, "", v)
        if ($2 != "" && v != "") print $2 "\t" v
    }' "$1"
}

if [ -f "$OUT" ]; then
    # Shape-check the committed baseline before comparing. A truncated,
    # hand-edited, or merge-mangled file would otherwise surface as a
    # confusing MISSING/NEW storm — or an abrupt `set -e` death with no
    # hint — so name the offending lines and the fix instead. Accepts
    # the current per-row-object format and the legacy flat format.
    bad=$(awk '
        /^[{}],?$/ { next }
        /^  "[^"]+": \{"sim_ns":[0-9]+(,"detail":"[^"]*")?\},?$/ { next }
        /^  "[^"]+": [0-9]+,?$/ { next }
        { printf "  line %d: %s\n", NR, $0 }' "$OUT")
    if ! [ -s "$OUT" ] || [ -n "$bad" ]; then
        echo "bench_compare: baseline $OUT is malformed (empty or unparseable rows):" >&2
        [ -n "$bad" ] && echo "$bad" | head -5 >&2
        echo "bench_compare: regenerate it with: rm $OUT && bash scripts/bench_compare.sh" >&2
        echo "bench_compare: then commit the regenerated baseline" >&2
        exit 1
    fi
    echo "==> comparing against $OUT (tolerance ${TOL}%)"
    status=0
    if ! awk -F'\t' -v tol="$TOL" '
        NR == FNR { base[$1] = $2; next }
        { cur[$1] = $2 }
        END {
            fail = 0
            for (k in base) {
                if (!(k in cur)) {
                    printf "MISSING   %s (baseline %s, no longer reported)\n", k, base[k]
                    fail = 1
                } else if (base[k] + 0 > 0 && cur[k] + 0 > base[k] * (1 + tol / 100)) {
                    printf "REGRESSED %s: %s -> %s (+%.1f%%)\n", k, base[k], cur[k], (cur[k] / base[k] - 1) * 100
                    fail = 1
                }
            }
            for (k in cur) {
                if (!(k in base)) {
                    printf "NEW       %s = %s (not in baseline)\n", k, cur[k]
                    fail = 1
                }
            }
            exit fail
        }' <(parse "$OUT") <(parse "$new_json"); then
        status=1
    fi
    if [ "$status" -ne 0 ]; then
        echo "bench_compare: FAILED (>${TOL}% regression, dropped row, or unbaselined row vs $OUT)" >&2
        echo "bench_compare: if intentional, regenerate with: rm $OUT && bash scripts/bench_compare.sh" >&2
        exit 1
    fi
    cp "$new_json" "$OUT"
    echo "bench_compare: OK ($(parse "$OUT" | wc -l) rows within ${TOL}%)"
else
    cp "$new_json" "$OUT"
    echo "bench_compare: baseline created at $OUT ($(parse "$OUT" | wc -l) rows); commit it"
fi
