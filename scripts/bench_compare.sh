#!/usr/bin/env bash
# Deterministic bench-regression gate.
#
# Runs every bench in crates/bench with BENCH_SIM_ONLY=1 (skipping
# wall-clock measurement — only the cost-model simulated-time tables
# run, which are exactly reproducible on any machine) and collects the
# per-row numbers emitted via BENCH_JSON_OUT into a JSON baseline:
#
#     { "<bench id>/<row label>": <sim_ns>, ... }
#
# If the baseline file (BENCH_2.json by default) is already committed,
# every tracked row is compared against it first: a row that grew by
# more than BENCH_TOLERANCE percent (default 10), or that disappeared,
# fails the gate. The fresh results are then written to the baseline
# path either way — simulated time is deterministic, so the file only
# changes when the code's cost behavior actually changed, and `git diff`
# shows exactly which rows moved.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${BENCH_OUT:-BENCH_2.json}
TOL=${BENCH_TOLERANCE:-10}

jsonl=$(mktemp)
new_json=$(mktemp)
trap 'rm -f "$jsonl" "$new_json"' EXIT

echo "==> running benches (sim-only) ..."
BENCH_SIM_ONLY=1 BENCH_JSON_OUT="$jsonl" cargo bench -q -p bench >/dev/null

if ! [ -s "$jsonl" ]; then
    echo "bench_compare: benches emitted no rows" >&2
    exit 1
fi

# JSON-lines -> one sorted JSON object.
LC_ALL=C sort "$jsonl" | awk -F'"' '
    {
        v = $0
        sub(/.*"sim_ns":/, "", v)
        sub(/[^0-9].*/, "", v)
        n += 1
        keys[n] = $4
        vals[n] = v
    }
    END {
        print "{"
        for (i = 1; i <= n; i++)
            printf "  \"%s\": %s%s\n", keys[i], vals[i], (i < n ? "," : "")
        print "}"
    }' > "$new_json"

# "key<TAB>value" pairs from a baseline-format JSON object.
parse() {
    awk -F'"' 'NF >= 3 {
        v = $3
        gsub(/[ :,}]/, "", v)
        if ($2 != "" && v != "") print $2 "\t" v
    }' "$1"
}

if [ -f "$OUT" ]; then
    echo "==> comparing against $OUT (tolerance ${TOL}%)"
    status=0
    if ! awk -F'\t' -v tol="$TOL" '
        NR == FNR { base[$1] = $2; next }
        { cur[$1] = $2 }
        END {
            fail = 0
            for (k in base) {
                if (!(k in cur)) {
                    printf "MISSING   %s (baseline %s, no longer reported)\n", k, base[k]
                    fail = 1
                } else if (base[k] + 0 > 0 && cur[k] + 0 > base[k] * (1 + tol / 100)) {
                    printf "REGRESSED %s: %s -> %s (+%.1f%%)\n", k, base[k], cur[k], (cur[k] / base[k] - 1) * 100
                    fail = 1
                }
            }
            for (k in cur)
                if (!(k in base))
                    printf "NEW       %s = %s\n", k, cur[k]
            exit fail
        }' <(parse "$OUT") <(parse "$new_json"); then
        status=1
    fi
    if [ "$status" -ne 0 ]; then
        echo "bench_compare: FAILED (>${TOL}% regression or dropped row vs $OUT)" >&2
        echo "bench_compare: if intentional, regenerate with: rm $OUT && bash scripts/bench_compare.sh" >&2
        exit 1
    fi
    cp "$new_json" "$OUT"
    echo "bench_compare: OK ($(parse "$OUT" | wc -l) rows within ${TOL}%)"
else
    cp "$new_json" "$OUT"
    echo "bench_compare: baseline created at $OUT ($(parse "$OUT" | wc -l) rows); commit it"
fi
