#!/usr/bin/env bash
# The full offline gate: everything CI runs, runnable on a laptop with
# no network (the workspace has no external dependencies by design —
# see DESIGN.md §7).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> sanitizer suite (hsan unit + e9 differential/property harness)"
cargo test -q --release -p hsan
cargo test -q --release --test e9_sanitizer

echo "==> crash-point exhaustion (e13: every disk-write index, torn and clean)"
cargo test -q --release --test e13_crash

echo "==> disk-integrity properties (e14: corruption detect/heal/contain)"
cargo test -q --release --test e14_integrity

echo "==> prelink snapshots (e15: identity, staleness, crash sweep)"
cargo test -q --release --test e15_snapshot

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> bench regression gate"
bash scripts/bench_compare.sh

echo "All checks passed."
