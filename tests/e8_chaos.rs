//! E8 — chaos: deterministic fault injection across the whole stack.
//!
//! The paper's safety story (PAPER.md §4: a segmentation fault is a
//! *normal* control-flow event that the handler resolves or cleanly
//! refuses) is property-tested here under injected failure: for any
//! xorshift seed and any injection rate up to [`RATE_BOUND_PPM`],
//!
//! * no thread panics — the host survives whatever the plan injects;
//! * the world settles ([`World::run_to_settle`] returns `Ok`, or a
//!   bounded `Err(Unsettled)` naming how many processes were live);
//! * only injected-fault victims exit nonzero, and surviving processes
//!   produce output identical to an injection-free run;
//! * the `WorldStats` injected/recovered counters reconcile with the
//!   `htrace` journal (`FaultInjected` / `RecoveryTaken` records);
//! * the entire outcome replays exactly from the seed.

use hemlock::{FaultPlan, FaultSite, ShareClass, Unsettled, World, WorldExit};
use proptest::prelude::*;

/// Documented injection-rate bound for the settle guarantee: 5% per
/// decision (parts per million). Higher rates are still panic-free and
/// contained (see `full_rate_per_site_is_contained`), but survivors are
/// no longer guaranteed.
const RATE_BOUND_PPM: u32 = 50_000;

/// Processes spawned per scenario.
const NPROCS: usize = 3;

/// Extra entropy folded into every generated plan seed, so the CI chaos
/// job's seed matrix (`CHAOS_SEED=1..n`) explores disjoint schedules
/// while any single run stays fully reproducible.
fn chaos_seed_offset() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// CI sweep hook: `CPUS=<n>` runs the whole suite on an n-CPU world
/// (default 1). Every containment and replay property must hold for
/// any CPU count — the interleave is deterministic either way.
fn cpus_override() -> u32 {
    std::env::var("CPUS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

/// Scheduler slices before a run counts as unsettled.
const SETTLE_SLICES: u64 = 400_000;

/// Mirrors the `LDL_SNAPSHOT` env hook (the nightly matrix also runs
/// this suite with prelink snapshots disabled): the snapshot-corruption
/// site can only fire while the subsystem is on.
fn snapshots_enabled() -> bool {
    !matches!(
        std::env::var("LDL_SNAPSHOT").ok().as_deref(),
        Some("off") | Some("0") | Some("false")
    )
}

/// Builds the scenario world: a *pure* public module (no mutable shared
/// state, so each process's output is independent of the others' fate)
/// and a main program that calls into it and prints the result.
fn build_world() -> (World, String) {
    let mut world = World::new();
    world
        .install_template(
            "/shared/lib/mathmod.o",
            r#"
            .module mathmod
            .text
            .globl triple
            triple: add  v0, a0, a0
                    add  v0, v0, a0
                    jr   ra
            .globl offset
            offset: la   r8, base
                    lw   r9, 0(r8)
                    add  v0, a0, r9
                    jr   ra
            .globl combine
            combine: addi sp, sp, -8
                    sw   ra, 0(sp)
                    jal  helper         ; resolved up the scope chain
                    lw   ra, 0(sp)
                    addi sp, sp, 8
                    jr   ra
            .data
            .globl base
            base:   .word 100
            "#,
        )
        .unwrap();
    world
        .install_template(
            "/src/main.o",
            r#"
            .module main
            .text
            .globl main
            main:   addi sp, sp, -8
                    sw   ra, 0(sp)
                    li   a0, 7
                    jal  triple         ; 21
                    or   a0, v0, r0
                    jal  offset         ; 121
                    or   a0, v0, r0
                    jal  combine        ; 1121 (via helper below)
                    or   a0, v0, r0
                    li   v0, 106        ; print_int(1121)
                    syscall
                    lw   ra, 0(sp)
                    addi sp, sp, 8
                    li   v0, 0
                    jr   ra
            .globl helper
            helper: addi v0, a0, 1000
                    jr   ra
            "#,
        )
        .unwrap();
    let exe = world
        .link(
            "/bin/chaos",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/mathmod.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    (world, exe)
}

/// Everything a chaos run is judged on (and everything that must replay
/// identically from the same seed).
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    settled: Result<WorldExit, Unsettled>,
    /// Per spawn slot: `None` if the spawn itself was refused.
    exits: Vec<Option<i32>>,
    consoles: Vec<Option<String>>,
    injected: u64,
    recovered: u64,
    trace_injected: u64,
    trace_recovered: u64,
    trace_evicted: u64,
    link_retries: u64,
}

/// Runs the chaos scenario. `warm` prepends one injection-free run and
/// a reboot before arming the plan: the first run writes the prelink
/// snapshot and the reboot re-opens it (the snapshot is consulted once
/// per executable per boot), so the armed spawns link *through* the
/// snapshot path and the `SnapshotCorrupt` site has real bytes to
/// corrupt. Cold (the default) keeps first-instantiation sites like
/// `InodeAlloc` reachable instead.
fn run_scenario_at(plan: Option<FaultPlan>, warm: bool) -> Outcome {
    let (mut world, exe) = build_world();
    world.set_cpus(cpus_override());
    if warm {
        let pid = world.spawn(&exe).unwrap();
        assert_eq!(world.run_to_settle(SETTLE_SLICES), Ok(WorldExit::AllExited));
        assert_eq!(world.exit_code(pid), Some(0), "warm-up run must be clean");
        world.reboot();
    }
    if let Some(plan) = plan {
        world.arm_faults(plan);
    }
    let mut pids = Vec::new();
    for _ in 0..NPROCS {
        pids.push(world.spawn(&exe).ok());
    }
    let settled = world.run_to_settle(SETTLE_SLICES);
    let stats = world.stats();
    let trace = world.trace();
    Outcome {
        settled,
        exits: pids
            .iter()
            .map(|p| p.and_then(|p| world.exit_code(p)))
            .collect(),
        consoles: pids.iter().map(|p| p.map(|p| world.console(p))).collect(),
        injected: stats.faults_injected,
        recovered: stats.faults_recovered,
        trace_injected: trace
            .records()
            .filter(|r| r.event.kind() == "FaultInjected")
            .count() as u64,
        trace_recovered: trace
            .records()
            .filter(|r| r.event.kind() == "RecoveryTaken")
            .count() as u64,
        trace_evicted: trace.evicted(),
        link_retries: stats.ldl.link_retries,
    }
}

/// The cold scenario — every first-instantiation fault site reachable.
fn run_scenario(plan: Option<FaultPlan>) -> Outcome {
    run_scenario_at(plan, false)
}

/// The invariants every chaos outcome must satisfy, given the
/// injection-free baseline for comparison.
fn check_contained(out: &Outcome, baseline: &Outcome) {
    // The world reached a stable state, or the failure is bounded.
    match out.settled {
        Ok(_) => {}
        Err(Unsettled { live, .. }) => assert!(live <= NPROCS, "unbounded unsettled state"),
    }
    let any_refused = out.exits.iter().any(|e| e.is_none());
    let any_nonzero = out.exits.iter().any(|e| matches!(e, Some(c) if *c != 0));
    if out.injected == 0 {
        // No injections ⇒ indistinguishable from the baseline.
        assert_eq!(out.exits, baseline.exits);
        assert_eq!(out.consoles, baseline.consoles);
        assert_eq!(out.recovered, 0);
    } else {
        // Victims require an injection; survivors are unharmed.
        assert!(
            !any_refused || out.injected > 0,
            "spawn refused without an injection"
        );
        assert!(
            !any_nonzero || out.injected > 0,
            "nonzero exit without an injection"
        );
    }
    for (slot, exit) in out.exits.iter().enumerate() {
        if *exit == Some(0) {
            // Seed-identical output: a surviving process prints exactly
            // what it prints in an injection-free world.
            assert_eq!(
                out.consoles[slot], baseline.consoles[slot],
                "survivor in slot {slot} produced different output"
            );
        }
    }
    // Counter reconciliation with the htrace journal (exact when the
    // ring evicted nothing, which the default capacity guarantees here).
    if out.trace_evicted == 0 {
        assert_eq!(
            out.injected, out.trace_injected,
            "plan counter vs FaultInjected trace records"
        );
        assert_eq!(
            out.recovered, out.trace_recovered,
            "world counter vs RecoveryTaken trace records"
        );
    }
    assert!(
        out.recovered <= out.injected,
        "every recovery needs an injection ({} > {})",
        out.recovered,
        out.injected
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The headline property: any seed, any rate ≤ the bound — no
    /// panics, the world settles (or fails bounded), victims are
    /// injection victims, survivors' output is seed-identical, and the
    /// counters reconcile with the trace. The whole outcome replays
    /// exactly from the seed. Both boot shapes are swept: cold (full
    /// resolution) and warm (linking through the prelink snapshot,
    /// where the `SnapshotCorrupt` site is live).
    #[test]
    fn any_seed_any_rate_is_contained(
        seed in any::<u64>(),
        rate in 0u32..RATE_BOUND_PPM + 1,
    ) {
        let seed = seed ^ chaos_seed_offset();
        for warm in [false, true] {
            let baseline = run_scenario_at(None, warm);
            let out = run_scenario_at(Some(FaultPlan::new(seed, rate)), warm);
            check_contained(&out, &baseline);
            let replay = run_scenario_at(Some(FaultPlan::new(seed, rate)), warm);
            prop_assert_eq!(out, replay, "chaos outcome must replay from its seed (warm={})", warm);
        }
    }
}

/// An unarmed world and an armed-at-rate-zero world are byte-identical
/// in every observable, and inject nothing.
#[test]
fn zero_rate_equals_unarmed() {
    let unarmed = run_scenario(None);
    let zero = run_scenario(Some(FaultPlan::new(0xC0FFEE, 0)));
    assert_eq!(unarmed.injected, 0);
    assert_eq!(zero.injected, 0);
    assert_eq!(unarmed.settled, Ok(WorldExit::AllExited));
    assert_eq!(zero.exits, unarmed.exits);
    assert_eq!(zero.consoles, unarmed.consoles);
    assert_eq!(unarmed.exits, vec![Some(0); NPROCS]);
    assert_eq!(
        unarmed.consoles,
        vec![Some("1121\n".to_string()); NPROCS],
        "the scenario's injection-free output"
    );
}

/// Well past the documented bound the settle guarantee weakens, but
/// containment must not: no panics, bounded behavior, reconciled
/// counters.
#[test]
fn heavy_rate_is_still_contained() {
    let baseline = run_scenario(None);
    for seed in [1u64, 0xDEAD_BEEF, u64::MAX] {
        let out = run_scenario(Some(FaultPlan::new(seed, 300_000)));
        assert!(out.injected > 0, "30% over a whole run must inject");
        check_contained(&out, &baseline);
    }
}

/// Every site individually, injecting on *every* decision — the
/// worst case for that site's recovery path. Victims die with nonzero
/// status; nothing panics; counters still reconcile.
#[test]
fn full_rate_per_site_is_contained() {
    let cold_baseline = run_scenario(None);
    let warm_baseline = run_scenario_at(None, true);
    for site in hemlock::ALL_SITES {
        // Only a warm boot consults a stored snapshot, so that is the
        // boot shape where the corruption site is reachable; every
        // other site gets the cold scenario (first instantiation).
        let warm = site == FaultSite::SnapshotCorrupt;
        let baseline = if warm { &warm_baseline } else { &cold_baseline };
        let plan = FaultPlan::new(42, 1_000_000).only(&[site]);
        let out = run_scenario_at(Some(plan), warm);
        check_contained(&out, baseline);
        // The swap sites only fire under memory pressure, which this
        // scenario (default frame budget) never creates, and the
        // shootdown site needs both pressure and a multi-CPU world;
        // their injection coverage lives in e10_pressure / e11_smp.
        // CrashTear is drawn only at the moment the simulated disk
        // dies, which needs a CrashPoint hit or an armed crash point —
        // its coverage lives in e13_crash.
        if matches!(
            site,
            FaultSite::SwapWrite
                | FaultSite::SwapRead
                | FaultSite::ShootdownDrop
                | FaultSite::CrashTear
        ) {
            assert_eq!(out.injected, 0, "these sites need pressure to fire");
            continue;
        }
        // The identity matrix also runs this suite with
        // `LDL_SNAPSHOT=off`; a disabled subsystem never reads
        // snapshot bytes, so there is nothing to corrupt.
        if site == FaultSite::SnapshotCorrupt && !snapshots_enabled() {
            assert_eq!(out.injected, 0, "disabled snapshots must not consult");
            continue;
        }
        assert!(
            out.injected > 0,
            "site {:?} was never reached by the scenario",
            site
        );
    }
}

/// Transient sites are retried by `ldl` with bounded backoff: a low
/// injection rate at a transient site is *absorbed* — every process
/// still exits 0 with correct output, and the retry counters prove the
/// faults actually happened.
#[test]
fn transient_faults_are_absorbed_by_retry() {
    // Hunt for a seed whose injections all land where retry can absorb
    // them (deterministic: the loop always finds the same seed).
    let mut absorbed = None;
    for seed in 1u64..64 {
        let plan = FaultPlan::new(seed, 60_000).only(&[FaultSite::SegmentAddr]);
        let out = run_scenario(Some(plan));
        // An injection may instead land on the prelink-snapshot store
        // path, which absorbs it without retrying (the rebuild is just
        // skipped); keep hunting for a seed that exercises the retry
        // machinery itself.
        if out.injected > 0 && out.link_retries > 0 && out.exits.iter().all(|e| *e == Some(0)) {
            absorbed = Some(out);
            break;
        }
    }
    let out = absorbed.expect("some seed injects a retryable segment-address fault");
    assert!(
        out.link_retries > 0,
        "absorption must go through the retry path"
    );
    assert!(out.recovered > 0, "retries surface as RecoveryTaken");
    assert_eq!(
        out.consoles
            .iter()
            .flatten()
            .filter(|c| *c == "1121\n")
            .count(),
        NPROCS,
        "absorbed faults leave output untouched"
    );
}
