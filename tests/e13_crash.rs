//! E13 — crash, reboot, recover (DESIGN.md §13): the journaled shared
//! file system proven by exhaustive crash-point testing.
//!
//! The shared partition is the paper's persistent heap — segments must
//! survive "even across system crashes" (PAPER.md §3). This suite
//! earns that word. A canonical multi-segment workload (a public
//! counter module bumped twice, then raw data segments written, with
//! an explicit acknowledgement barrier in the middle) is run once
//! crash-free to count its disk writes, then re-run *once per write
//! index k*, killing the simulated disk at write k — every one of them,
//! torn and clean — and after each `power_cut` + `reboot` the world
//! must prove:
//!
//! 1. **fsck self-heals**: boot-time fsck leaves zero unrepaired
//!    issues, at every k.
//! 2. **Replay converges**: recovering twice is recovering once — a
//!    second journal replay (and a second full crash/reboot cycle) is
//!    a digest-identical no-op, and the live tree equals the disk twin.
//! 3. **Addresses are stable**: every surviving segment keeps the
//!    address the crash-free run assigned (§3's crash-survivable
//!    table, rebuilt by scan).
//! 4. **Acknowledged data is intact**: everything written before a
//!    completed barrier — mapped counter stores included — reads back
//!    exactly, and survivors relink and keep counting.
//! 5. **Unacknowledged data is atomic**: each un-barriered operation
//!    is all-or-nothing after recovery; no torn sizes, no half-writes.
//! 6. **The outcome replays from the seed**: the same crash point
//!    recovers to the byte-identical state every time.
//!
//! Plus the satellite regressions: the `TornWrite` chaos site heals
//! across a reboot (the journal carries the full intended data), crash
//! under memory pressure reclaims orphaned swap files instead of
//! resurrecting them, seeded chaos crash points (`CrashPoint` /
//! `CrashTear`) stay contained, and the whole pipeline adds *zero*
//! simulated cost to crash-free runs.

use hemlock::{FaultPlan, FaultSite, ShareClass, World, WorldExit};
use hsfs::FsError;

/// Scheduler slices before a guest run counts as stuck.
const RUN_SLICES: u64 = 200_000;

/// CI sweep hook: `CRASH_SEED=<n>` folds extra entropy into the seeded
/// chaos-crash plans, so the nightly matrix explores disjoint death
/// points while any single run stays fully reproducible.
fn crash_seed_offset() -> u64 {
    std::env::var("CRASH_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// CI sweep hook: `CPUS=<n>` runs the seeded-chaos and pressure tests
/// on an n-CPU world (default 1). The exhaustive enumeration pins both
/// 1 and 4 CPUs explicitly; recovery must be CPU-count-independent.
fn cpus_override() -> u32 {
    std::env::var("CPUS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

/// CI sweep hook: `PRESSURE_BUDGET=<frames>` overrides the frame
/// budget of the crash-under-pressure test (cf. e10).
fn budget_override() -> Option<u64> {
    std::env::var("PRESSURE_BUDGET")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|b| *b > 0)
}

/// Deterministic byte pattern: recognizable, offset-sensitive.
fn pat(tag: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| tag.wrapping_add((i as u8).wrapping_mul(131)))
        .collect()
}

// --- the counter module (cf. tests/persistence_and_admin.rs) ---

const COUNTER: &str = r#"
.module counter
.text
.globl bump
bump:   la   r8, count
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        or   v0, r9, r0
        jr   ra
.data
.globl count
count:  .word 0
"#;

const MAIN: &str = r#"
.module main
.text
.globl main
main:   addi sp, sp, -8
        sw   ra, 0(sp)
        jal  bump
        lw   ra, 0(sp)
        addi sp, sp, 8
        jr   ra
"#;

fn build_counter(world: &mut World) -> String {
    world
        .install_template("/shared/lib/counter.o", COUNTER)
        .unwrap();
    world.install_template("/src/main.o", MAIN).unwrap();
    world
        .link(
            "/bin/p",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/counter.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap()
}

fn run_prog(world: &mut World, exe: &str) -> i32 {
    let pid = world.spawn(exe).unwrap();
    assert_eq!(
        world.run(RUN_SLICES),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    world.exit_code(pid).unwrap()
}

// --- the canonical multi-segment workload ---

/// Paths whose recovery is judged (the unlinked `tmp` is judged by its
/// absence-or-atomicity, separately).
const SURVIVORS: &[&str] = &[
    "/shared/lib/counter.o",
    "/shared/lib/counter",
    "/shared/data/a",
    "/shared/data/b",
    "/shared/data/c",
];

/// Runs the canonical workload: build and run the counter program
/// twice (mapped stores into a public module instance), write two raw
/// data segments, **barrier** (the acknowledgement point — everything
/// up to here must survive any later crash), then pile on an
/// unacknowledged suffix: a new segment, an extending overwrite, a
/// grow-truncate, and a create+write+unlink. Returns the disk write
/// index of the barrier.
///
/// On a world whose disk has been armed to die, the *live* run is
/// byte-identical (the death is invisible until `power_cut`), but the
/// returned barrier index freezes at the death point — crash-point
/// classification must use the crash-free reference run's index.
fn run_workload(world: &mut World) -> u64 {
    let exe = build_counter(world);
    assert_eq!(run_prog(world, &exe), 1);
    assert_eq!(run_prog(world, &exe), 2);
    let vfs = &mut world.kernel.vfs;
    vfs.mkdir_all("/shared/data", 0o755, 0).unwrap();
    vfs.create_file("/shared/data/a", 0o644, 0).unwrap();
    vfs.write("/shared/data/a", 2000, &pat(0xA1, 6000)).unwrap();
    vfs.create_file("/shared/data/b", 0o644, 0).unwrap();
    vfs.write("/shared/data/b", 0, &pat(0xB2, 3000)).unwrap();
    let ack = world.barrier();
    // Unacknowledged from here on: no barrier follows.
    let vfs = &mut world.kernel.vfs;
    vfs.create_file("/shared/data/c", 0o644, 0).unwrap();
    vfs.write("/shared/data/c", 0, &pat(0xC3, 5000)).unwrap();
    vfs.write("/shared/data/a", 8192, &pat(0xA9, 4100)).unwrap();
    let b = vfs.resolve("/shared/data/b").unwrap();
    vfs.truncate_vnode(b, 65_536).unwrap();
    vfs.create_file("/shared/data/tmp", 0o600, 0).unwrap();
    vfs.write("/shared/data/tmp", 0, &pat(0x77, 100)).unwrap();
    vfs.unlink("/shared/data/tmp").unwrap();
    ack
}

/// The crash-free reference: write-index landmarks and the address
/// every segment must keep.
struct Reference {
    /// Disk write index when the workload starts (world-setup writes
    /// precede it; a crash armed below this dies at the first workload
    /// write anyway).
    baseline: u64,
    /// Disk write index of the completed barrier.
    ack: u64,
    /// Total disk writes of the full workload.
    total: u64,
    /// `(path, segment address)` for every surviving segment.
    addrs: Vec<(String, u32)>,
}

fn reference(cpus: u32) -> Reference {
    let mut world = World::new();
    world.set_cpus(cpus);
    let baseline = world.disk_seq();
    let ack = run_workload(&mut world);
    let total = world.disk_seq();
    assert!(
        baseline < ack && ack < total,
        "workload must write on both sides of the barrier ({baseline} / {ack} / {total})"
    );
    let addrs = SURVIVORS
        .iter()
        .map(|p| (p.to_string(), world.kernel.vfs.path_to_addr(p).unwrap()))
        .collect();
    Reference {
        baseline,
        ack,
        total,
        addrs,
    }
}

/// Everything a recovered world is judged on — and everything that
/// must replay byte-identically from the same crash point.
#[derive(Debug, PartialEq, Eq)]
struct Recovered {
    digest: u64,
    /// `(path, size)` per interesting path; `None` = absent.
    files: Vec<(String, Option<u64>)>,
    counter: Option<u32>,
    crashes: u64,
    journal_replays: u64,
    blocks_discarded: u64,
    recovery_ns: u64,
    fsck_lines: Vec<String>,
}

fn observe(world: &mut World) -> Recovered {
    let stats = world.stats();
    let mut files = Vec::new();
    for path in SURVIVORS.iter().chain(&["/shared/data/tmp"]) {
        let size = world.kernel.vfs.stat(path).ok().map(|m| m.size);
        files.push((path.to_string(), size));
    }
    Recovered {
        digest: world.shared_digest(),
        files,
        counter: world.peek_shared_word("/shared/lib/counter", "count").ok(),
        crashes: stats.crashes,
        journal_replays: stats.journal_replays,
        blocks_discarded: stats.blocks_discarded,
        recovery_ns: stats.recovery_ns,
        fsck_lines: world
            .log
            .iter()
            .filter(|l| l.starts_with("fsck:"))
            .cloned()
            .collect(),
    }
}

/// One full crash run: arm the disk to die at write `k`, run the
/// workload (live behavior is identical — the death is invisible),
/// pull the plug, reboot, and snapshot the recovered state.
fn crash_at(k: u64, tear: bool, cpus: u32) -> (World, Recovered) {
    let mut world = World::new();
    world.set_cpus(cpus);
    world.set_crash_at(k, tear);
    let _ = run_workload(&mut world);
    world.power_cut();
    world.reboot();
    let rec = observe(&mut world);
    (world, rec)
}

fn size_of(world: &mut World, path: &str) -> Option<u64> {
    world.kernel.vfs.stat(path).ok().map(|m| m.size)
}

fn read(world: &mut World, path: &str, off: u64, len: usize) -> Vec<u8> {
    world.kernel.vfs.read(path, off, len).unwrap()
}

/// Invariants that hold at *every* crash point.
fn check_invariants(world: &mut World, rec: &Recovered, reference: &Reference, k: u64) {
    // 1. fsck self-healed everything it found.
    assert!(
        !world.log.iter().any(|l| l.contains("UNREPAIRED")),
        "k={k}: fsck left damage unrepaired: {:?}",
        rec.fsck_lines
    );
    // 2. Replay converged: the live tree equals the disk twin, and a
    //    second replay of the surviving journal changes nothing.
    let d1 = world.shared_digest();
    assert_eq!(
        world.kernel.vfs.shared.fs.disk_digest(),
        Some(d1),
        "k={k}: live tree diverged from the disk image after recovery"
    );
    world.kernel.vfs.shared.fs.replay_journal();
    assert_eq!(
        world.shared_digest(),
        d1,
        "k={k}: journal replay is not idempotent"
    );
    // 3. Every surviving segment kept its address.
    for (path, addr) in &reference.addrs {
        if let Ok(a) = world.kernel.vfs.path_to_addr(path) {
            assert_eq!(a, *addr, "k={k}: segment address moved for {path}");
        }
    }
    // Exactly the writes past the death point were lost — the workload
    // is deterministic, so the discard count is too.
    assert_eq!(
        rec.blocks_discarded,
        reference.total.saturating_sub(k),
        "k={k}: unexpected discard count"
    );
    // 5. Unacknowledged operations recovered atomically.
    check_atomicity(world, k);
}

/// Each un-barriered operation is all-or-nothing after recovery: a
/// file exists with one of the sizes a committed transaction prefix
/// can produce, and whatever content is present is the full intended
/// content — never a torn half-write (replay re-applies the committed
/// block images over any torn home block).
fn check_atomicity(world: &mut World, k: u64) {
    match size_of(world, "/shared/data/c") {
        None | Some(0) => {}
        Some(5000) => {
            assert_eq!(
                read(world, "/shared/data/c", 0, 5000),
                pat(0xC3, 5000),
                "k={k}: segment c content torn"
            );
        }
        other => panic!("k={k}: segment c recovered to impossible size {other:?}"),
    }
    match size_of(world, "/shared/data/a") {
        None | Some(0) => {}
        Some(sz @ (8000 | 12292)) => {
            assert_eq!(
                read(world, "/shared/data/a", 2000, 6000),
                pat(0xA1, 6000),
                "k={k}: segment a base write torn"
            );
            assert!(
                read(world, "/shared/data/a", 0, 2000)
                    .iter()
                    .all(|b| *b == 0),
                "k={k}: segment a gap not zero-filled"
            );
            if sz == 12292 {
                assert_eq!(
                    read(world, "/shared/data/a", 8192, 4100),
                    pat(0xA9, 4100),
                    "k={k}: segment a extension torn"
                );
                assert!(
                    read(world, "/shared/data/a", 8000, 192)
                        .iter()
                        .all(|b| *b == 0),
                    "k={k}: segment a extension gap not zero-filled"
                );
            }
        }
        other => panic!("k={k}: segment a recovered to impossible size {other:?}"),
    }
    match size_of(world, "/shared/data/b") {
        None | Some(0) => {}
        Some(sz @ (3000 | 65_536)) => {
            assert_eq!(
                read(world, "/shared/data/b", 0, 3000),
                pat(0xB2, 3000),
                "k={k}: segment b content torn"
            );
            if sz == 65_536 {
                assert!(
                    read(world, "/shared/data/b", 3000, 1000)
                        .iter()
                        .all(|b| *b == 0),
                    "k={k}: segment b grow-truncate not zero-filled"
                );
            }
        }
        other => panic!("k={k}: segment b recovered to impossible size {other:?}"),
    }
    // The create+write+unlink triple: absent, empty, or fully written.
    match size_of(world, "/shared/data/tmp") {
        None | Some(0) | Some(100) => {}
        other => panic!("k={k}: tmp recovered to impossible size {other:?}"),
    }
}

/// The acknowledged-data guarantees: once the barrier completed before
/// the death point, everything before it — mapped counter stores
/// included — is intact, and the survivors relink and keep counting.
fn check_acknowledged(world: &mut World, k: u64) {
    assert_eq!(
        world.peek_shared_word("/shared/lib/counter", "count").ok(),
        Some(2),
        "k={k}: acknowledged counter value lost"
    );
    let a = size_of(world, "/shared/data/a");
    assert!(
        a == Some(8000) || a == Some(12292),
        "k={k}: acknowledged segment a lost (size {a:?})"
    );
    let b = size_of(world, "/shared/data/b");
    assert!(
        b == Some(3000) || b == Some(65_536),
        "k={k}: acknowledged segment b lost (size {b:?})"
    );
    // Survivors relink through ldl and the counter keeps counting.
    assert_eq!(
        run_prog(world, "/bin/p"),
        3,
        "k={k}: survivor failed to relink and continue"
    );
}

/// The tentpole: every crash point, exhaustively.
fn exhaust(cpus: u32) {
    let reference = reference(cpus);
    for k in reference.baseline..=reference.total {
        // Deterministically mix torn and clean deaths across the range.
        let tear = k % 3 == 0;
        let (mut world, rec) = crash_at(k, tear, cpus);
        check_invariants(&mut world, &rec, &reference, k);
        // Recover twice ≡ once: an immediate second crash/reboot cycle
        // (a crash *during* recovery's aftermath) changes nothing.
        let d1 = world.shared_digest();
        world.power_cut();
        world.reboot();
        assert_eq!(
            world.shared_digest(),
            d1,
            "k={k}: a second crash/reboot cycle changed recovered state"
        );
        if k >= reference.ack {
            check_acknowledged(&mut world, k);
        }
        // Byte-identical replay from the crash point (sampled — each
        // probe doubles that point's cost).
        if k % 7 == 0 {
            let (_, again) = crash_at(k, tear, cpus);
            assert_eq!(rec, again, "k={k}: crash outcome did not replay");
        }
    }
}

#[test]
fn crash_point_exhaustion() {
    exhaust(1);
}

#[test]
fn crash_point_exhaustion_smp() {
    exhaust(4);
}

/// Seeded chaos crash sites: `CrashPoint` draws the death point and
/// `CrashTear` the torn-block coin at that moment. Every seed must
/// recover to a state satisfying the same invariants, and replay
/// byte-identically from its seed.
#[test]
fn seeded_chaos_crashes_recover() {
    let cpus = cpus_override();
    let reference = reference(cpus);
    let run = |seed: u64| -> (Recovered, bool) {
        let mut world = World::new();
        world.set_cpus(cpus);
        world.arm_faults(
            FaultPlan::new(seed, 30_000).only(&[FaultSite::CrashPoint, FaultSite::CrashTear]),
        );
        let _ = run_workload(&mut world);
        let died = world.kernel.vfs.shared.fs.device_dead();
        world.power_cut();
        world.reboot();
        let rec = observe(&mut world);
        assert!(
            !world.log.iter().any(|l| l.contains("UNREPAIRED")),
            "seed {seed}: fsck left damage unrepaired"
        );
        let d1 = world.shared_digest();
        assert_eq!(world.kernel.vfs.shared.fs.disk_digest(), Some(d1));
        world.kernel.vfs.shared.fs.replay_journal();
        assert_eq!(
            world.shared_digest(),
            d1,
            "seed {seed}: replay not idempotent"
        );
        for (path, addr) in &reference.addrs {
            if let Ok(a) = world.kernel.vfs.path_to_addr(path) {
                assert_eq!(a, *addr, "seed {seed}: address moved for {path}");
            }
        }
        check_atomicity(&mut world, seed);
        if !died {
            // The plan never fired: nothing was lost, everything holds.
            assert_eq!(rec.blocks_discarded, 0);
            check_acknowledged(&mut world, seed);
        }
        (rec, died)
    };
    let mut deaths = 0;
    for base in 0..8u64 {
        let seed = (base + 1) ^ crash_seed_offset();
        let (rec, died) = run(seed);
        deaths += died as u64;
        let (again, _) = run(seed);
        assert_eq!(rec, again, "seed {seed}: chaos crash did not replay");
    }
    assert!(deaths > 0, "a 3%-per-write plan must kill the device");
}

// --- satellite: the TornWrite chaos site heals across reboot ---

/// The pre-§13 gap: a torn `write_at` leaves the *live* file half
/// written (the caller sees `ShortWrite`), and nothing could restore
/// it. Now the write-ahead journal carries the full intended block
/// images, so a crash–reboot cycle restores the write's atomicity at
/// exactly the chaos site that tears it.
#[test]
fn torn_write_heals_across_reboot() {
    let mut world = World::new();
    world
        .kernel
        .vfs
        .mkdir_all("/shared/data", 0o755, 0)
        .unwrap();
    world
        .kernel
        .vfs
        .create_file("/shared/data/t", 0o644, 0)
        .unwrap();
    world
        .kernel
        .vfs
        .write("/shared/data/t", 0, &pat(0x11, 8192))
        .unwrap();
    // One write, torn for certain.
    world.arm_faults(FaultPlan::new(7, 1_000_000).only(&[FaultSite::TornWrite]));
    let intended = pat(0x5A, 6000);
    assert_eq!(
        world.kernel.vfs.write("/shared/data/t", 1000, &intended),
        Err(FsError::ShortWrite)
    );
    world.arm_faults(FaultPlan::new(7, 0));
    // The live file really is torn: a prefix landed, the tail is stale.
    let live = read(&mut world, "/shared/data/t", 1000, 6000);
    assert_eq!(live[..3000], intended[..3000], "torn write lands a prefix");
    assert_ne!(
        live[3000..],
        intended[3000..],
        "torn write must not complete"
    );
    // Crash and reboot: the journaled full intent is replayed home.
    world.power_cut();
    world.reboot();
    assert_eq!(size_of(&mut world, "/shared/data/t"), Some(8192));
    assert_eq!(
        read(&mut world, "/shared/data/t", 1000, 6000),
        intended,
        "reboot recovery must restore the torn write's atomicity"
    );
    assert_eq!(
        read(&mut world, "/shared/data/t", 0, 1000),
        pat(0x11, 8192)[..1000],
        "bytes before the torn range are untouched"
    );
    assert!(!world.log.iter().any(|l| l.contains("UNREPAIRED")));
    let d = world.shared_digest();
    assert_eq!(world.kernel.vfs.shared.fs.disk_digest(), Some(d));
}

// --- satellite: crash under pressure recycles swap files ---

const SHARED_DATA: &str = r#"
.module shared_data
.data
.globl results
results: .space 64
.globl done_count
done_count: .word 0
.globl done_lock
done_lock: .word 0
"#;

const PRESSURE_WORKER: &str = r#"
.module worker
.text
.globl main
main:   la   r8, wid
        lw   r16, 0(r8)
        la   r8, results
        sll  r12, r16, 2
        add  r8, r8, r12
        sw   r0, 0(r8)
        li   r13, 3
pass:   la   r8, buf
        li   r9, 0
        li   r10, 16384
fill:   add  r11, r8, r9
        add  r12, r9, r16
        sw   r12, 0(r11)
        addi r9, r9, 256
        slt  r12, r9, r10
        bne  r12, r0, fill
        li   r17, 0
        li   r9, 0
sum:    add  r11, r8, r9
        lw   r12, 0(r11)
        add  r17, r17, r12
        addi r9, r9, 256
        slt  r12, r9, r10
        bne  r12, r0, sum
        addi r13, r13, -1
        bgtz r13, pass
        la   r8, results
        sll  r12, r16, 2
        add  r8, r8, r12
        sw   r17, 0(r8)
acq:    la   a0, done_lock
        li   a1, 1
        li   v0, 102           ; SVC_TAS
        syscall
        bne  v0, r0, acq
        la   r8, done_count
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        la   r8, done_lock
        sw   r0, 0(r8)
        or   a0, r17, r0
        li   v0, 106           ; print_int(checksum)
        syscall
        li   v0, 0
        jr   ra
.data
.globl wid
wid:    .word 0
.globl buf
buf:    .space 16384
"#;

const PRESSURE_WORKERS: usize = 4;

/// The checksum worker `id` prints (cf. e10): Σ over offsets of
/// (offset + id), with a 256-byte stride over 16 KiB.
fn expected_checksum(id: u32) -> u32 {
    let touches = 16_384 / 256;
    256 * (touches * (touches - 1) / 2) + touches * id
}

/// One pressured cycle on an already-built world: spawn the workers,
/// run to completion, assert every checksum. Swap traffic is forced by
/// the tight frame budget set at build time.
fn pressure_cycle(world: &mut World, exe: &str) {
    let image_wid = {
        let bytes = world.kernel.vfs.read_all(exe).unwrap();
        hobj::binfmt::decode_image(&bytes)
            .unwrap()
            .find_export("wid")
            .unwrap()
    };
    let mut pids = Vec::new();
    for id in 0..PRESSURE_WORKERS {
        let pid = world.spawn(exe).unwrap();
        let proc = world.kernel.procs.get_mut(&pid).unwrap();
        proc.aspace
            .write_bytes(
                &mut world.kernel.vfs.shared,
                image_wid,
                &(id as u32).to_le_bytes(),
            )
            .unwrap();
        pids.push(pid);
    }
    world.quantum = 300;
    assert_eq!(world.run(400_000), WorldExit::AllExited);
    for (id, pid) in pids.iter().enumerate() {
        assert_eq!(world.exit_code(*pid), Some(0));
        assert_eq!(
            world.console(*pid),
            format!("{}\n", expected_checksum(id as u32))
        );
    }
}

fn swap_entries(world: &mut World) -> Vec<String> {
    world
        .kernel
        .vfs
        .readdir("/shared")
        .unwrap()
        .into_iter()
        .filter(|e| e.starts_with(".kswap"))
        .collect()
}

/// The pre-§13 leak: a crash strands `/.kswap{N}` files whose content
/// is dead (the processes whose pages they held died with the power).
/// Boot-time fsck must *reclaim* them — and a fresh pressured run must
/// *recycle* the name with fresh content, not resurrect the old file.
#[test]
fn crash_under_pressure_recycles_swap_files() {
    let mut world = World::new();
    world.set_cpus(cpus_override());
    world.set_frame_budget(budget_override().unwrap_or(12));
    world
        .install_template("/shared/lib/shared_data.o", SHARED_DATA)
        .unwrap();
    world
        .install_template("/src/worker.o", PRESSURE_WORKER)
        .unwrap();
    let exe = world
        .link(
            "/bin/worker",
            &[
                ("/src/worker.o", ShareClass::StaticPrivate),
                ("/shared/lib/shared_data.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    pressure_cycle(&mut world, &exe);
    let s1 = world.stats();
    assert!(s1.swap_outs > 0, "the budget must force swap traffic");
    assert_eq!(s1.oom_kills, 0, "swap absorbs the pressure");
    assert!(
        !swap_entries(&mut world).is_empty(),
        "the thrash must leave a swap file on the shared partition"
    );
    // Pull the plug with the swap file in place.
    world.power_cut();
    world.reboot();
    // Reclaimed, not resurrected: the crash-orphaned swap inodes are
    // gone, fsck is clean, and nothing dangles in the address table.
    assert!(
        swap_entries(&mut world).is_empty(),
        "orphan swap files must not survive reboot"
    );
    assert!(
        world
            .log
            .iter()
            .any(|l| l.contains("reclaimed orphan swap file")),
        "fsck must report the reclaim: {:?}",
        world.log
    );
    assert!(hsfs::tools::fsck_boot(&mut world.kernel.vfs.shared).is_empty());
    assert!(!world.log.iter().any(|l| l.contains("UNREPAIRED")));
    // Recycled: the same world thrashes again from a cold start, and
    // the swap path works with a brand-new file under the old name.
    pressure_cycle(&mut world, &exe);
    let s2 = world.stats();
    assert!(s2.swap_outs > s1.swap_outs, "the re-run swaps again");
    // And a *crashed disk* mid-thrash still comes back clean: the swap
    // file's metadata may or may not have survived the death point,
    // but either way the reboot leaves no orphans.
    let k = world.disk_seq() + 3;
    world.set_crash_at(k, true);
    pressure_cycle(&mut world, &exe);
    world.power_cut();
    world.reboot();
    assert!(swap_entries(&mut world).is_empty());
    assert!(hsfs::tools::fsck_boot(&mut world.kernel.vfs.shared).is_empty());
    assert!(!world.log.iter().any(|l| l.contains("UNREPAIRED")));
}

// --- satellite: the pipeline is free when nothing crashes ---

/// The acceptance bar for the whole subsystem: with the journal on,
/// a crash-free run costs *exactly* the same simulated time as with
/// the journal off, produces the same guest observables, and the same
/// logical file-system state. Durability is paid for only at recovery.
#[test]
fn pipeline_adds_zero_simulated_cost_when_crash_free() {
    let run = |durable: bool| {
        let mut world = World::new();
        if !durable {
            world.set_durability(false);
        }
        let _ = run_workload(&mut world);
        let stats = world.stats();
        assert_eq!(stats.crashes, 0);
        assert_eq!(stats.journal_replays, 0);
        assert_eq!(stats.recovery_ns, 0);
        (
            world.costs.time(&stats),
            world.shared_digest(),
            world
                .peek_shared_word("/shared/lib/counter", "count")
                .unwrap(),
            stats.shared_fs,
            stats.kernel.instructions,
        )
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(on.0, off.0, "the journal must not move simulated time");
    assert_eq!(on.1, off.1, "the journal must not change logical state");
    assert_eq!(on.2, off.2);
    assert_eq!(on.3, off.3, "the journal must not touch FsStats");
    assert_eq!(on.4, off.4);
}

/// A clean reboot (no power cut) flushes the pipeline first: nothing
/// is lost, nothing needs replay at the next boot, and the un-barriered
/// suffix survives in full — the contract `persistence_and_admin`'s
/// reboot test has always relied on.
#[test]
fn clean_reboot_loses_nothing() {
    let mut world = World::new();
    let _ = run_workload(&mut world);
    let digest = world.shared_digest();
    world.reboot();
    assert_eq!(world.shared_digest(), digest, "clean reboot lost state");
    assert_eq!(
        world.peek_shared_word("/shared/lib/counter", "count").ok(),
        Some(2)
    );
    assert_eq!(size_of(&mut world, "/shared/data/c"), Some(5000));
    assert_eq!(size_of(&mut world, "/shared/data/a"), Some(12292));
    assert_eq!(size_of(&mut world, "/shared/data/b"), Some(65_536));
    assert_eq!(run_prog(&mut world, "/bin/p"), 3);
}
