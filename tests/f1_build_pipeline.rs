//! F1 — Figure 1: building a program with linked-in shared objects, and
//! the §2 run-time protocol (crt0 → ldl → lazy linking → fault-driven
//! resolution → pointer following).

use hemlock::{ShareClass, World, WorldExit};
use hobj::binfmt;

/// Module with an *external* reference: `deep_fn` is not defined here, so
/// the instance has pending relocations and must be mapped inaccessible.
const SHALLOW: &str = r#"
.module shallow
.text
.globl shallow_fn
shallow_fn:
        addi sp, sp, -8
        sw   ra, 0(sp)
        jal  deep_fn
        addi v0, v0, 100
        lw   ra, 0(sp)
        addi sp, sp, 8
        jr   ra
.uses   deep
"#;

const DEEP: &str = r#"
.module deep
.text
.globl deep_fn
deep_fn:
        li   v0, 7
        jr   ra
"#;

#[test]
fn figure1_pipeline_produces_runnable_aout() {
    // cc (hasm) → lds → a.out with crt0 + ldl info → run.
    let mut world = World::new();
    world
        .install_template(
            "/src/main.o",
            ".module main\n.text\n.globl main\nmain: li v0, 5\njr ra\n",
        )
        .unwrap();
    let exe = world
        .link("/bin/a.out", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    // The executable is a decodable image with the special crt0 entry.
    let bytes = world.kernel.vfs.read_all(&exe).unwrap();
    let image = binfmt::decode_image(&bytes).unwrap();
    assert_eq!(image.entry, image.find_export("_start").unwrap());
    assert!(image.find_export("main").is_some());
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(world.run(100_000), WorldExit::AllExited);
    assert_eq!(world.exit_code(pid), Some(5));
}

#[test]
fn shared_modules_stay_out_of_the_load_image() {
    // Figure 1: shared1.o..sharedN.o are *not* copied into a.out.
    let mut world = World::new();
    world.install_template("/shared/lib/deep.o", DEEP).unwrap();
    world
        .install_template(
            "/src/main.o",
            ".module main\n.text\n.globl main\nmain: addi sp, sp, -8\nsw ra, 0(sp)\njal deep_fn\nlw ra, 0(sp)\naddi sp, sp, 8\njr ra\n",
        )
        .unwrap();
    let exe = world
        .link(
            "/bin/a.out",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/deep.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let bytes = world.kernel.vfs.read_all(&exe).unwrap();
    let image = binfmt::decode_image(&bytes).unwrap();
    // The dynamic list names the module; its code is not in the image.
    assert_eq!(image.dynamic.len(), 1);
    assert_eq!(image.dynamic[0].name, "/shared/lib/deep.o");
    assert!(image.find_export("deep_fn").is_none());
    // `main`'s call is a pending relocation recorded for ldl.
    assert!(image.pending.iter().any(|p| p.symbol == "deep_fn"));
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(world.run(100_000), WorldExit::AllExited);
    assert_eq!(world.exit_code(pid), Some(7));
}

#[test]
fn lazy_linking_defers_module_resolution_until_first_touch() {
    // `shallow` has undefined refs (deep_fn) → mapped without access;
    // the first call faults, the handler links it (mapping `deep` in
    // turn), and the instruction restarts.
    let mut world = World::new();
    world
        .install_template("/shared/lib/shallow.o", SHALLOW)
        .unwrap();
    world.install_template("/shared/lib/deep.o", DEEP).unwrap();
    world
        .install_template(
            "/src/main.o",
            ".module main\n.text\n.globl main\nmain: addi sp, sp, -8\nsw ra, 0(sp)\njal shallow_fn\nlw ra, 0(sp)\naddi sp, sp, 8\njr ra\n",
        )
        .unwrap();
    let exe = world
        .link(
            "/bin/a.out",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/shallow.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(
        world.run(200_000),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    assert_eq!(world.exit_code(pid), Some(107), "log: {:?}", world.log);
    // The lazy path actually ran: at least one fault resolved by a lazy
    // link, and `deep` was brought in as part of the chain reaction.
    let stats = world.stats();
    assert!(stats.ldl.lazy_links >= 1, "{:?}", stats.ldl);
    assert!(stats.kernel.segv_faults >= 1);
    assert!(world.kernel.vfs.resolve("/shared/lib/deep").is_ok());
}

#[test]
fn unused_modules_are_never_linked() {
    // "linking only the portions of that graph that are actually used
    // during any particular run" — an unused lazy module stays lazy.
    let mut world = World::new();
    world
        .install_template("/shared/lib/shallow.o", SHALLOW)
        .unwrap();
    world.install_template("/shared/lib/deep.o", DEEP).unwrap();
    world
        .install_template(
            "/src/main.o",
            ".module main\n.text\n.globl main\nmain: li v0, 1\njr ra\n",
        )
        .unwrap();
    let exe = world
        .link(
            "/bin/a.out",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/shallow.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(world.run(100_000), WorldExit::AllExited);
    assert_eq!(world.exit_code(pid), Some(1));
    let stats = world.stats();
    assert_eq!(stats.ldl.lazy_links, 0);
    assert_eq!(stats.ldl.symbols_resolved, 0);
    // `deep` was never even located.
    assert!(world.kernel.vfs.resolve("/shared/lib/deep").is_err());
}

#[test]
fn pointer_following_maps_unmapped_segments() {
    // §2: "it allows the process to follow pointers into segments that
    // may or may not yet be mapped." A raw data segment holds a value;
    // the program computes its address with path_to_addr and just
    // dereferences it — the fault handler maps the file.
    let mut world = World::new();
    // A plain data segment (not a module).
    world
        .kernel
        .vfs
        .create_file("/shared/rawdata", 0o666, 1)
        .unwrap();
    let addr = world.kernel.vfs.path_to_addr("/shared/rawdata").unwrap();
    world
        .kernel
        .vfs
        .write("/shared/rawdata", 0, &0xABCDu32.to_le_bytes())
        .unwrap();
    world
        .install_template(
            "/src/main.o",
            &format!(
                ".module main\n.text\n.globl main\nmain: li r8, {addr}\nlw v0, 0(r8)\njr ra\n"
            ),
        )
        .unwrap();
    let exe = world
        .link("/bin/a.out", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(
        world.run(100_000),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    assert_eq!(world.exit_code(pid), Some(0xABCD), "log: {:?}", world.log);
    let stats = world.stats();
    assert_eq!(stats.ldl.segments_mapped, 1);
}

#[test]
fn pointer_chains_across_segments() {
    // A pointer stored *inside* one shared segment leads to another
    // segment; both get mapped on demand as the program chases the chain.
    let mut world = World::new();
    world
        .kernel
        .vfs
        .create_file("/shared/seg_a", 0o666, 1)
        .unwrap();
    world
        .kernel
        .vfs
        .create_file("/shared/seg_b", 0o666, 1)
        .unwrap();
    let a = world.kernel.vfs.path_to_addr("/shared/seg_a").unwrap();
    let b = world.kernel.vfs.path_to_addr("/shared/seg_b").unwrap();
    // seg_a[0] = &seg_b[8]; seg_b[8] = 777.
    world
        .kernel
        .vfs
        .write("/shared/seg_a", 0, &(b + 8).to_le_bytes())
        .unwrap();
    world
        .kernel
        .vfs
        .write("/shared/seg_b", 8, &777u32.to_le_bytes())
        .unwrap();
    world
        .install_template(
            "/src/main.o",
            &format!(
                ".module main\n.text\n.globl main\nmain: li r8, {a}\nlw r9, 0(r8)\nlw v0, 0(r9)\njr ra\n"
            ),
        )
        .unwrap();
    let exe = world
        .link("/bin/a.out", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(
        world.run(100_000),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    assert_eq!(world.exit_code(pid), Some(777), "log: {:?}", world.log);
    assert_eq!(world.stats().ldl.segments_mapped, 2);
}

#[test]
fn unresolvable_fault_reaches_guest_handler_then_kills() {
    // The backward-compatibility path: "When the dynamic linking system's
    // fault handler is unable to resolve a fault, a program-provided
    // handler for SIGSEGV is invoked, if one exists."
    let mut world = World::new();
    world
        .install_template(
            "/src/main.o",
            r#"
            .module main
            .text
            .globl main
            main:   li   v0, 15          ; sigaction(handler)
                    la   a0, handler
                    syscall
                    li   r8, 0x20000000  ; unmapped private address
                    lw   r9, 0(r8)       ; faults; Hemlock cannot resolve
                    li   v0, 0
                    jr   ra
            handler:
                    li   v0, 1           ; exit(55) from the handler
                    li   a0, 55
                    syscall
            "#,
        )
        .unwrap();
    let exe = world
        .link("/bin/a.out", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(
        world.run(100_000),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    assert_eq!(world.exit_code(pid), Some(55), "log: {:?}", world.log);
}

#[test]
fn unresolvable_fault_without_handler_kills() {
    let mut world = World::new();
    world
        .install_template(
            "/src/main.o",
            ".module main\n.text\n.globl main\nmain: li r8, 0x20000000\nlw r9, 0(r8)\nli v0, 0\njr ra\n",
        )
        .unwrap();
    let exe = world
        .link("/bin/a.out", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(world.run(100_000), WorldExit::AllExited);
    assert_eq!(world.exit_code(pid), Some(139), "log: {:?}", world.log);
}
