//! E12 — the decoded basic-block cache (DESIGN.md §12) is semantically
//! invisible.
//!
//! The cache is a host-speed optimization: `Cpu::run_block` executes
//! straight-line decoded runs instead of fetch→decode→dispatch per
//! instruction, and `hkernel` drops cached blocks on exactly the events
//! that already invalidate the TLB. Nothing the guest — or the cost
//! model, or the sanitizer, or the chaos engine — can observe is allowed
//! to change. Four claims are tested here:
//!
//! 1. **Differential property**: over quantum × cpus ∈ {1,4} ×
//!    frame-budget, a cache-on run and a cache-off run of the same
//!    pressured multi-worker scenario produce identical observables,
//!    identical simulated time, an identical `htrace` stream (modulo the
//!    0-cost `BlockInvalidated` diagnostics the cache itself emits), and
//!    identical `WorldStats` modulo the three `bblock` counters; the
//!    counters themselves reconcile (`hits + built = entries`,
//!    `invalidations ≤ built`).
//! 2. **Chaos and sanitizer identity**: an armed fault plan injects the
//!    same failures with the same outcomes either way, and hsan reports
//!    the same races from the same PCs — the observed `MemBus` sees
//!    every load and store whether or not decode was skipped.
//! 3. **Invalidation edges**: a guest store into a cached executable
//!    page aborts the in-flight block (self-modifying code executes the
//!    *new* bytes), clock eviction under SMP pressure drops the victim's
//!    blocks, fork flushes the parent and starts the child cold, and a
//!    generation-counter wraparound flushes rather than ABA-matching.
//! 4. **Pinning**: a block never outlives a text-epoch movement — the
//!    partial run retires exactly the instructions that executed and
//!    hands control back to the dispatch loop.

use hemlock::{
    CostModel, FaultPlan, FaultSite, ShareClass, TraceBuffer, Unsettled, World, WorldExit,
};
use proptest::prelude::*;

/// Scheduler slices before a run counts as unsettled.
const SETTLE_SLICES: u64 = 400_000;

/// Workers in the pressure scenario.
const WORKERS: usize = 4;

/// Shared data for the pressure workers (cf. `tests/e11_smp.rs`).
const SHARED_DATA: &str = r#"
.module shared_data
.data
.globl results
results: .space 64
.globl done_count
done_count: .word 0
.globl done_lock
done_lock: .word 0
"#;

/// The pressure worker (cf. `tests/e11_smp.rs`): dirties its shared
/// slot, churns a 4-page anon buffer, publishes under the TAS lock.
const WORKER: &str = r#"
.module worker
.text
.globl main
main:   la   r8, wid
        lw   r16, 0(r8)
        la   r8, results
        sll  r12, r16, 2
        add  r8, r8, r12
        sw   r0, 0(r8)
        li   r13, 3
pass:   la   r8, buf
        li   r9, 0
        li   r10, 16384
fill:   add  r11, r8, r9
        add  r12, r9, r16
        sw   r12, 0(r11)
        addi r9, r9, 256
        slt  r12, r9, r10
        bne  r12, r0, fill
        li   r17, 0
        li   r9, 0
sum:    add  r11, r8, r9
        lw   r12, 0(r11)
        add  r17, r17, r12
        addi r9, r9, 256
        slt  r12, r9, r10
        bne  r12, r0, sum
        addi r13, r13, -1
        bgtz r13, pass
        la   r8, results
        sll  r12, r16, 2
        add  r8, r8, r12
        sw   r17, 0(r8)
acq:    la   a0, done_lock
        li   a1, 1
        li   v0, 102           ; SVC_TAS
        syscall
        bne  v0, r0, acq
        la   r8, done_count
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        la   r8, done_lock
        sw   r0, 0(r8)
        or   a0, r17, r0
        li   v0, 106           ; print_int(checksum)
        syscall
        li   v0, 0
        jr   ra
.data
.globl wid
wid:    .word 0
.globl buf
buf:    .space 16384
"#;

/// Everything a run is judged on.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observables {
    settled: Result<WorldExit, Unsettled>,
    exits: Vec<Option<i32>>,
    consoles: Vec<String>,
    shared: Option<(u32, Vec<u32>)>,
}

/// Full fidelity for the cache-on/cache-off comparison: observables,
/// the simulated clock, the filtered trace stream, and `WorldStats`
/// with the three `bblock` counters zeroed (they are the only fields
/// allowed to differ).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Replay {
    obs: Observables,
    sim_ns: u64,
    trace: Vec<String>,
    stats: String,
}

fn build_pressure_world() -> (World, String) {
    let mut world = World::new();
    world
        .install_template("/shared/lib/shared_data.o", SHARED_DATA)
        .unwrap();
    world.install_template("/src/worker.o", WORKER).unwrap();
    let exe = world
        .link(
            "/bin/worker",
            &[
                ("/src/worker.o", ShareClass::StaticPrivate),
                ("/shared/lib/shared_data.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    (world, exe)
}

/// Final shared memory of the pressure scenario.
fn shared_words(world: &mut World) -> Option<(u32, Vec<u32>)> {
    let inst = "/shared/lib/shared_data";
    let ino = world.kernel.vfs.resolve(inst).ok()?.ino;
    let base = {
        let meta = world.registry.get(&mut world.kernel.vfs, ino)?;
        meta.find_export("results").unwrap() - meta.base
    };
    let done = world.peek_shared_word(inst, "done_count").unwrap();
    let bytes = world.kernel.vfs.shared.fs.file_bytes(ino).unwrap();
    let results = (0..WORKERS)
        .map(|i| {
            let off = base as usize + 4 * i;
            u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
        })
        .collect();
    Some((done, results))
}

/// `WorldStats` with the three `bblock` counters masked off, as a
/// comparable string (the struct deliberately has no `PartialEq`).
fn masked_stats(world: &World) -> String {
    let mut stats = world.stats();
    stats.bblocks_built = 0;
    stats.bblock_hits = 0;
    stats.bblock_invalidations = 0;
    format!("{stats:?}")
}

/// The trace stream for comparison. `BlockInvalidated` records are the
/// cache's own 0-cost diagnostics — they exist only on a cache-on run
/// and occupy sequence slots, so the comparison drops them and compares
/// (pid, cost, event) in stream order rather than by `seq`.
fn comparable_trace(world: &World) -> Vec<String> {
    world
        .trace()
        .records()
        .filter(|r| r.event.kind() != "BlockInvalidated")
        .map(|r| format!("{} {} {}", r.pid, r.cost_ns, r.event))
        .collect()
}

fn trace_cause_count(world: &World, cause: &str) -> u64 {
    world
        .trace()
        .records()
        .filter(|r| match &r.event {
            hemlock::TraceEvent::BlockInvalidated { cause: c, .. } => *c == cause,
            _ => false,
        })
        .count() as u64
}

/// Runs the pressure scenario and collects every observable.
fn run_pressured(
    cache: bool,
    quantum: u64,
    cpus: u32,
    budget: Option<u64>,
    plan: Option<FaultPlan>,
) -> (Replay, World) {
    let (mut world, exe) = build_pressure_world();
    *world.trace_mut() = TraceBuffer::new(1 << 20);
    world.set_bbcache(cache);
    world.set_cpus(cpus);
    if let Some(frames) = budget {
        world.set_frame_budget(frames);
    }
    if let Some(plan) = plan {
        world.arm_faults(plan);
    }
    let image_wid = {
        let bytes = world.kernel.vfs.read_all(&exe).unwrap();
        hobj::binfmt::decode_image(&bytes)
            .unwrap()
            .find_export("wid")
            .unwrap()
    };
    let mut pids = Vec::new();
    for id in 0..WORKERS {
        let pid = world.spawn(&exe).unwrap();
        let proc = world.kernel.procs.get_mut(&pid).unwrap();
        proc.aspace
            .write_bytes(
                &mut world.kernel.vfs.shared,
                image_wid,
                &(id as u32).to_le_bytes(),
            )
            .unwrap();
        pids.push(pid);
    }
    world.quantum = quantum;
    let settled = world.run_to_settle(SETTLE_SLICES);
    let shared = shared_words(&mut world);
    let obs = Observables {
        settled,
        exits: pids.iter().map(|p| world.exit_code(*p)).collect(),
        consoles: pids.iter().map(|p| world.console(*p)).collect(),
        shared,
    };
    let replay = Replay {
        obs,
        sim_ns: CostModel::default().time(&world.stats()).0,
        trace: comparable_trace(&world),
        stats: masked_stats(&world),
    };
    (replay, world)
}

/// The unbounded peak working set, used to pick a binding budget.
fn calibrated_half_budget() -> u64 {
    let (_, world) = run_pressured(true, 300, 1, None, None);
    (world.stats().peak_resident_frames / 2).max(1)
}

// --- 1. the differential property -------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// For any quantum, cpus ∈ {1,4}, pressured or not: cache-on and
    /// cache-off runs are indistinguishable in every observable, the
    /// simulated clock, the trace stream, and `WorldStats` modulo the
    /// three `bblock` counters — and the counters reconcile.
    #[test]
    fn cache_is_semantically_invisible(
        quantum in 100u64..500,
        four_cpus in 0u32..2,
        pressured in 0u32..2,
    ) {
        let cpus = if four_cpus == 1 { 4 } else { 1 };
        let budget = (pressured == 1).then(calibrated_half_budget);
        let (on, on_world) = run_pressured(true, quantum, cpus, budget, None);
        let (off, off_world) = run_pressured(false, quantum, cpus, budget, None);
        prop_assert_eq!(&on, &off, "cache must be invisible (cpus={})", cpus);

        // The cache must actually have been exercised on / idle off.
        let bb = on_world.kernel.bb_stats();
        prop_assert!(bb.hits > 0, "fast path never taken: {bb:?}");
        prop_assert!(bb.built > 0);
        prop_assert_eq!(bb.hits + bb.built, bb.entries, "{:?}", bb);
        prop_assert!(bb.invalidations <= bb.built, "{bb:?}");
        let idle = off_world.kernel.bb_stats();
        prop_assert_eq!(idle.entries, 0, "disabled cache moved: {:?}", idle);

        // The WorldStats counters are the kernel's, verbatim.
        let stats = on_world.stats();
        prop_assert_eq!(stats.bblocks_built, bb.built);
        prop_assert_eq!(stats.bblock_hits, bb.hits);
        prop_assert_eq!(stats.bblock_invalidations, bb.invalidations);
    }
}

// --- 2. chaos + sanitizer identity ------------------------------------

/// An armed fault plan injects the same failures and the world takes the
/// same recoveries with the cache on or off — chaos outcomes replay
/// across the fast path, not just across host runs.
#[test]
fn chaos_outcomes_are_identical_with_cache_off() {
    let budget = calibrated_half_budget();
    let plan = || FaultPlan::new(7, 1_000_000).only(&[FaultSite::ShootdownDrop]);
    let (on, on_world) = run_pressured(true, 300, 4, Some(budget), Some(plan()));
    let (off, _) = run_pressured(false, 300, 4, Some(budget), Some(plan()));
    assert_eq!(on, off, "chaos must be cache-blind");
    assert!(on_world.stats().faults_injected > 0, "plan must inject");
    assert!(on_world.kernel.bb_stats().hits > 0);
}

/// hsan sees every load and store on the fast path: the lock-elided
/// racy counter (cf. `tests/e11_smp.rs`) is reported identically — same
/// verdict, same racing PCs — with the cache on or off.
#[test]
fn sanitizer_verdicts_are_identical_with_cache_off() {
    const COUNTER_DATA: &str = r#"
.module shcount
.data
.globl count
count:  .word 0
"#;
    const COUNTER_ELIDED: &str = r#"
.module worker
.text
.globl main
main:   li   r16, 5
loop:   la   r8, count
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        addi r16, r16, -1
        bgtz r16, loop
        li   v0, 0
        jr   ra
"#;
    let run = |cache: bool| {
        let mut world = World::new();
        world.set_bbcache(cache);
        world
            .install_template("/shared/lib/shcount.o", COUNTER_DATA)
            .unwrap();
        world
            .install_template("/src/worker.o", COUNTER_ELIDED)
            .unwrap();
        let exe = world
            .link(
                "/bin/worker",
                &[
                    ("/src/worker.o", ShareClass::StaticPrivate),
                    ("/shared/lib/shcount.o", ShareClass::DynamicPublic),
                ],
            )
            .unwrap();
        world.set_cpus(4);
        world.arm_sanitizer();
        for _ in 0..4 {
            world.spawn(&exe).unwrap();
        }
        world.quantum = 50;
        assert_eq!(
            world.run_to_settle(SETTLE_SLICES).expect("settles"),
            WorldExit::AllExited
        );
        let races = world.races().to_vec();
        (world.stats().races_detected, races, world)
    };
    let (on_count, on_races, on_world) = run(true);
    let (off_count, off_races, _) = run(false);
    assert!(on_count >= 1, "elided lock must race");
    assert_eq!(on_count, off_count, "same verdict count");
    assert_eq!(on_races, off_races, "same races, same PCs");
    assert!(on_world.kernel.bb_stats().hits > 0, "fast path must run");
}

// --- 3. invalidation edges --------------------------------------------

/// Self-modifying code: private text is W^X (a guest store into it
/// segfaults, cache or no cache), but a lazily-linked public module's
/// text is mapped RWX — so a guest can patch a function it has already
/// executed *and cached*. The store must drop the stale block (the
/// bus's W^X dirty hook) and abort the in-flight run (text epoch), so
/// the second call executes the *patched* bytes, exactly as it does
/// with the cache off. Without the hook the stale decoded `addi v0, 1`
/// would win and the run would exit 1.
#[test]
fn store_into_cached_executable_page_aborts_the_running_block() {
    const PATCHMOD: &str = r#"
.module patchmod
.text
.globl func
func:   addi v0, r0, 1
        jr   ra
.globl donor
donor:  addi v0, r0, 77
"#;
    const MAIN: &str = r#"
.module main
.text
.globl main
main:   addi sp, sp, -8
        sw   ra, 0(sp)
        jal  func           ; warm the cache: v0 = 1
        la   r9, donor
        lw   r10, 0(r9)
        la   r8, func
        sw   r10, 0(r8)     ; patch func's first instruction
        jal  func           ; must run the patched bytes: v0 = 77
        lw   ra, 0(sp)
        addi sp, sp, 8
        jr   ra
"#;
    let run = |cache: bool| {
        let mut world = World::new();
        world.set_bbcache(cache);
        world
            .install_template("/shared/lib/patchmod.o", PATCHMOD)
            .unwrap();
        world.install_template("/src/main.o", MAIN).unwrap();
        let exe = world
            .link(
                "/bin/smc",
                &[
                    ("/src/main.o", ShareClass::StaticPrivate),
                    ("/shared/lib/patchmod.o", ShareClass::DynamicPublic),
                ],
            )
            .unwrap();
        let pid = world.spawn(&exe).unwrap();
        assert_eq!(world.run_to_completion(), WorldExit::AllExited);
        (world.exit_code(pid), world)
    };
    let (on_code, on_world) = run(true);
    let (off_code, _) = run(false);
    assert_eq!(off_code, Some(77), "reference semantics: patched byte wins");
    assert_eq!(on_code, off_code, "cached run executed stale bytes");
    // The W^X dirty hook fired and dropped the warmed block.
    assert!(
        trace_cause_count(&on_world, "store-exec") > 0,
        "store-exec invalidation missing:\n{}",
        on_world.trace_dump()
    );
    assert!(on_world.kernel.bb_stats().invalidations > 0);
}

/// Clock eviction under SMP pressure: the reclaim (running on the boot
/// CPU) evicts text pages whose blocks were built by victims on other
/// CPUs. The blocks drop with the page — visibly, via `BlockInvalidated
/// cause=evict` — and the victims re-fault, re-page, rebuild, and still
/// compute the same answers. Blocks are budget-capped so none is ever
/// mid-flight across a sub-quantum when a remote reclaim runs: the
/// "pinning" discipline is that eviction always lands between blocks.
#[test]
fn eviction_drops_cached_blocks_built_on_other_cpus() {
    let budget = calibrated_half_budget();
    let (on, on_world) = run_pressured(true, 300, 4, Some(budget), None);
    assert_eq!(on.obs.settled, Ok(WorldExit::AllExited));
    let stats = on_world.stats();
    assert!(stats.page_evictions > 0, "budget {budget} must bind");
    assert!(stats.shootdowns > 0, "reclaim must cross CPUs");
    assert!(
        trace_cause_count(&on_world, "evict") > 0,
        "evictions must drop cached blocks"
    );
    // And the pressured, evicting, multi-CPU run still matches cache-off.
    let (off, _) = run_pressured(false, 300, 4, Some(budget), None);
    assert_eq!(on, off);
}

/// `run_block` pins nothing across a text-epoch movement: the moment
/// the bus reports a moved epoch (here, the block's own store — the
/// same signal a cross-CPU invalidation raises), the partial run stops,
/// retires exactly the instructions that executed, and returns control
/// to the dispatch loop with no outcome pending.
#[test]
fn run_block_aborts_and_partially_retires_on_epoch_movement() {
    use hvm::{Bus, Cpu, Fault, Reg};

    /// 64 KB flat memory whose text epoch moves on every store.
    struct EpochBus {
        mem: Vec<u8>,
        epoch: u64,
    }
    impl Bus for EpochBus {
        fn fetch(&mut self, addr: u32) -> Result<u32, Fault> {
            self.load32(addr)
        }
        fn load8(&mut self, addr: u32) -> Result<u8, Fault> {
            Ok(self.mem[addr as usize])
        }
        fn load16(&mut self, addr: u32) -> Result<u16, Fault> {
            let a = addr as usize;
            Ok(u16::from_le_bytes(self.mem[a..a + 2].try_into().unwrap()))
        }
        fn load32(&mut self, addr: u32) -> Result<u32, Fault> {
            let a = addr as usize;
            Ok(u32::from_le_bytes(self.mem[a..a + 4].try_into().unwrap()))
        }
        fn store8(&mut self, addr: u32, val: u8) -> Result<(), Fault> {
            self.mem[addr as usize] = val;
            self.epoch += 1;
            Ok(())
        }
        fn store16(&mut self, addr: u32, val: u16) -> Result<(), Fault> {
            self.mem[addr as usize..addr as usize + 2].copy_from_slice(&val.to_le_bytes());
            self.epoch += 1;
            Ok(())
        }
        fn store32(&mut self, addr: u32, val: u32) -> Result<(), Fault> {
            self.mem[addr as usize..addr as usize + 4].copy_from_slice(&val.to_le_bytes());
            self.epoch += 1;
            Ok(())
        }
        fn text_epoch(&mut self) -> u64 {
            self.epoch
        }
    }

    // addi r8,r8,1 ×3; sw r8,0x100(r0); addi r8,r8,1 ×2; jr ra — the
    // store moves the epoch, so the block must stop after 4 retired.
    let asm = "\
.module t\n.text\n.globl main\n\
main: addi r8, r8, 1\naddi r8, r8, 1\naddi r8, r8, 1\n\
sw r8, 256(r0)\naddi r8, r8, 1\naddi r8, r8, 1\njr ra\n";
    let obj = hobj::hasm::assemble("t", asm).unwrap();
    let code = hvm::bbcache::decode_run(&obj.text);
    assert_eq!(code.len(), 7, "whole run decodes up to the terminator");

    let mut bus = EpochBus {
        mem: vec![0u8; 1 << 16],
        epoch: 0,
    };
    bus.mem[..obj.text.len()].copy_from_slice(&obj.text);
    let mut cpu = Cpu::new();
    cpu.pc = 0;
    let (ran, outcome) = cpu.run_block(&mut bus, &code, 1_000);
    assert_eq!(ran, 4, "3 addis + the store retire, then the abort");
    assert_eq!(outcome, None, "abort is not an outcome — redispatch");
    assert_eq!(cpu.reg(Reg(8)), 3, "post-store addis did not run");
    assert_eq!(cpu.pc, 16, "pc parked on the first unexecuted instruction");

    // The dispatch loop re-enters from the parked pc and finishes.
    let tail = hvm::bbcache::decode_run(&obj.text[16..]);
    let (ran2, outcome2) = cpu.run_block(&mut bus, &tail, 1_000);
    assert_eq!((ran2, outcome2), (3, None), "2 addis + the retiring jr");
}

/// Fork COW un-sharing: the parent's cache is flushed at the fork (its
/// pages un-share underneath it) and the child starts cold — and the
/// forked world still computes exactly what the cache-off twin does.
#[test]
fn fork_flushes_parent_blocks_and_matches_cache_off() {
    const SHARED_CELL: &str = r#"
.module cell
.data
.globl cell
cell:   .word 0
"#;
    // Parent spins enough to cache its loop, forks; child bumps the
    // shared cell and exits 7; parent waits and exits with cell+10.
    const FORKER: &str = r#"
.module main
.text
.globl main
main:   li   r16, 6
warm:   addi r16, r16, -1
        bgtz r16, warm
        li   v0, 6          ; fork
        syscall
        bne  v0, r0, parent
        la   r8, cell
        li   r9, 7
        sw   r9, 0(r8)
        li   v0, 1          ; exit(7)
        li   a0, 7
        syscall
parent: li   v0, 16         ; waitpid(any)
        li   a0, 0
        syscall
        la   r8, cell
        lw   r9, 0(r8)
        addi a0, r9, 10
        li   v0, 1          ; exit(cell + 10)
        syscall
"#;
    let run = |cache: bool| {
        let mut world = World::new();
        world.set_bbcache(cache);
        world
            .install_template("/shared/lib/cell.o", SHARED_CELL)
            .unwrap();
        world.install_template("/src/main.o", FORKER).unwrap();
        let exe = world
            .link(
                "/bin/forker",
                &[
                    ("/src/main.o", ShareClass::StaticPrivate),
                    ("/shared/lib/cell.o", ShareClass::DynamicPublic),
                ],
            )
            .unwrap();
        let pid = world.spawn(&exe).unwrap();
        assert_eq!(world.run_to_completion(), WorldExit::AllExited);
        (world.exit_code(pid), world)
    };
    let (on_code, on_world) = run(true);
    let (off_code, _) = run(false);
    assert_eq!(off_code, Some(17), "child's 7 + 10");
    assert_eq!(on_code, off_code);
    assert!(
        trace_cause_count(&on_world, "fork") > 0,
        "fork must flush the parent's warmed cache:\n{}",
        on_world.trace_dump()
    );
}

/// Generation-counter wraparound: when a page's generation stamp wraps,
/// the cache must flush (epoch bump) rather than let a stale block
/// ABA-match the reset stamp. We warm the cache, pin the hot page's
/// generation to `u32::MAX` (restamping its live blocks), force one
/// more invalidation to wrap it, and the world still finishes correctly
/// with the whole cache demonstrably rebuilt.
#[test]
fn generation_wraparound_flushes_instead_of_aba_matching() {
    const SPINNER: &str = r#"
.module spin
.text
.globl main
main:   li   r16, 50000
loop:   addi r16, r16, -1
        bgtz r16, loop
        li   v0, 0
        jr   ra
"#;
    let mut world = World::new();
    world.install_template("/src/spin.o", SPINNER).unwrap();
    let exe = world
        .link("/bin/spin", &[("/src/spin.o", ShareClass::StaticPrivate)])
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    world.quantum = 50;
    assert_eq!(world.run(40), WorldExit::StepLimit, "still mid-loop");

    let proc = world.kernel.procs.get_mut(&pid).unwrap();
    let vp = proc.cpu.pc / hsfs::PAGE_SIZE;
    let bb = proc.aspace.bbcache_mut();
    assert!(!bb.is_empty(), "the loop must be cached by now");
    let epoch_before = bb.flush_epoch();
    let built_before = bb.stats().built;
    bb.force_gen(vp, u32::MAX);
    bb.invalidate_page(vp, "wrap-test"); // MAX + 1 wraps ⇒ full flush
    assert!(
        bb.flush_epoch() > epoch_before,
        "wraparound must bump the flush epoch"
    );
    assert!(bb.is_empty(), "nothing may survive the wrap");

    assert_eq!(world.run_to_completion(), WorldExit::AllExited);
    assert_eq!(world.exit_code(pid), Some(0));
    let bb = world.kernel.bb_stats();
    assert!(
        bb.built > built_before,
        "the loop must have been rebuilt after the wrap: {bb:?}"
    );
    assert_eq!(bb.hits + bb.built, bb.entries);
}

// --- 4. the switches --------------------------------------------------

/// `World::set_bbcache(false)` reconfigures *live* processes too: a
/// world switched off mid-run stops building and still finishes with
/// the same answers.
#[test]
fn cache_can_be_disabled_mid_run() {
    let (mut world, exe) = build_pressure_world();
    let pid = world.spawn(&exe).unwrap();
    world.quantum = 50;
    assert_eq!(world.run(20), WorldExit::StepLimit);
    let warm = world.kernel.bb_stats();
    assert!(warm.entries > 0, "cache must be warm before the switch");
    world.set_bbcache(false);
    assert_eq!(world.run_to_completion(), WorldExit::AllExited);
    assert_eq!(world.exit_code(pid), Some(0), "log: {:?}", world.log);
    let cold = world.kernel.bb_stats();
    assert_eq!(cold.entries, warm.entries, "no entries after the switch");
}

/// The `HVM_BBCACHE` env hook: `off` disables the cache at `World::new`
/// (the CI nightly lane runs the whole suite this way).
#[test]
fn env_hook_disables_the_cache() {
    // Env mutation is process-global; keep the window tiny and restore.
    std::env::set_var("HVM_BBCACHE", "off");
    let world = World::new();
    std::env::remove_var("HVM_BBCACHE");
    assert!(!world.kernel.bbcache_enabled());
    assert!(World::new().kernel.bbcache_enabled(), "default is on");
}
