//! Persistence, crash survival, and the manual-cleanup facilities:
//! the paper's §3 crash-survivable address table and §5 garbage-collection
//! story, end to end through the whole stack.

use hemlock::{ShareClass, World, WorldExit};
use hsfs::tools;

const COUNTER: &str = r#"
.module counter
.text
.globl bump
bump:   la   r8, count
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        or   v0, r9, r0
        jr   ra
.data
.globl count
count:  .word 0
"#;

const MAIN: &str = r#"
.module main
.text
.globl main
main:   addi sp, sp, -8
        sw   ra, 0(sp)
        jal  bump
        lw   ra, 0(sp)
        addi sp, sp, 8
        jr   ra
"#;

fn build(world: &mut World) -> String {
    world
        .install_template("/shared/lib/counter.o", COUNTER)
        .unwrap();
    world.install_template("/src/main.o", MAIN).unwrap();
    world
        .link(
            "/bin/p",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/counter.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap()
}

fn run(world: &mut World, exe: &str) -> i32 {
    let pid = world.spawn(exe).unwrap();
    assert_eq!(
        world.run(200_000),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    world.exit_code(pid).unwrap()
}

#[test]
fn shared_state_survives_reboot() {
    let mut world = World::new();
    let exe = build(&mut world);
    assert_eq!(run(&mut world, &exe), 1);
    assert_eq!(run(&mut world, &exe), 2);

    // Crash + reboot: in-kernel table and all caches are lost; the disk
    // survives; the boot scan rebuilds the mapping.
    world.reboot();

    // The module instance still exists, still at the same address, with
    // the counter value intact — and new processes keep counting.
    assert_eq!(
        world
            .peek_shared_word("/shared/lib/counter", "count")
            .unwrap(),
        2
    );
    assert_eq!(run(&mut world, &exe), 3);
}

#[test]
fn segments_are_perusable_and_cleanable() {
    let mut world = World::new();
    let exe = build(&mut world);
    assert_eq!(run(&mut world, &exe), 1);
    // Add a raw (non-module) data segment too.
    world
        .kernel
        .vfs
        .create_file("/shared/tmp/scratch", 0o666, 1)
        .unwrap();

    let listing = world.list_segments();
    // Module instance, its template, and the raw segment all enumerate.
    let by_path: Vec<(&str, bool)> = listing
        .iter()
        .map(|(info, exports)| (info.path.as_str(), exports.is_some()))
        .collect();
    assert!(by_path.contains(&("/lib/counter", true)), "{by_path:?}");
    assert!(by_path.contains(&("/lib/counter.o", false)));
    assert!(by_path.contains(&("/tmp/scratch", false)));
    // Module rows carry their exports.
    let (_, exports) = listing
        .iter()
        .find(|(i, _)| i.path == "/lib/counter")
        .unwrap();
    let exports = exports.as_ref().unwrap();
    assert!(exports.contains(&"bump".to_string()));
    assert!(exports.contains(&"count".to_string()));

    // Manual cleanup: remove the finished job's scratch area.
    let removed = tools::cleanup_prefix(&mut world.kernel.vfs.shared, "/tmp").unwrap();
    assert_eq!(removed, 1);
    assert!(world.kernel.vfs.resolve("/shared/tmp/scratch").is_err());
    // The partition stays consistent.
    assert!(tools::fsck_shared(&mut world.kernel.vfs.shared).is_empty());
}

#[test]
fn fsck_detects_and_boot_scan_repairs_crash_damage() {
    let mut world = World::new();
    let exe = build(&mut world);
    assert_eq!(run(&mut world, &exe), 1);
    let n_segments = world.list_segments().len();
    // Lose the table mid-flight (no reboot): fsck reports every segment.
    world.kernel.vfs.shared.linear_table_clear_for_test();
    let issues = tools::fsck_shared(&mut world.kernel.vfs.shared);
    assert_eq!(issues.len(), n_segments);
    world.kernel.vfs.shared.boot_scan();
    assert!(tools::fsck_shared(&mut world.kernel.vfs.shared).is_empty());
}

#[test]
fn position_dependence_copying_a_segment_breaks_its_pointers() {
    // §5 "Position-Dependent Files": a segment with internal absolute
    // pointers cannot be copied to another slot — the pointers still
    // point into the *old* slot. Demonstrated at the system level.
    let mut world = World::new();
    world
        .kernel
        .vfs
        .create_file("/shared/orig", 0o666, 1)
        .unwrap();
    let orig = world.kernel.vfs.path_to_addr("/shared/orig").unwrap();
    // orig[0] = &orig[8]; orig[8] = 42 (self-referential pointer).
    world
        .kernel
        .vfs
        .write("/shared/orig", 0, &(orig + 8).to_le_bytes())
        .unwrap();
    world
        .kernel
        .vfs
        .write("/shared/orig", 8, &42u32.to_le_bytes())
        .unwrap();
    // "cp" the file to a new segment (new slot, new address).
    let content = world.kernel.vfs.read_all("/shared/orig").unwrap();
    world
        .kernel
        .vfs
        .create_file("/shared/copy", 0o666, 1)
        .unwrap();
    world.kernel.vfs.write("/shared/copy", 0, &content).unwrap();
    let copy = world.kernel.vfs.path_to_addr("/shared/copy").unwrap();
    assert_ne!(orig, copy);
    // A program reading through the copy's pointer lands in the ORIGINAL
    // segment — the copy's internal pointer is stale, exactly the hazard
    // the paper describes for cp/tar/mail.
    world
        .install_template(
            "/src/main.o",
            &format!(
                ".module main\n.text\n.globl main\nmain: li r8, {copy}\nlw r9, 0(r8)\nlw v0, 0(r9)\njr ra\n"
            ),
        )
        .unwrap();
    let exe = world
        .link("/bin/chase", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(world.run(200_000), WorldExit::AllExited);
    assert_eq!(world.exit_code(pid), Some(42));
    // The pointer it followed was orig's address, not copy's.
    let followed = u32::from_le_bytes(content[0..4].try_into().unwrap());
    assert_eq!(followed, orig + 8);
}

#[test]
fn slot_reuse_after_cleanup_gives_fresh_segments() {
    let mut world = World::new();
    world
        .kernel
        .vfs
        .create_file("/shared/old", 0o666, 1)
        .unwrap();
    let old_addr = world.kernel.vfs.path_to_addr("/shared/old").unwrap();
    world.kernel.vfs.write("/shared/old", 0, b"stale!").unwrap();
    world.kernel.vfs.unlink("/shared/old").unwrap();
    // The slot is recycled for a new segment at the same address...
    world
        .kernel
        .vfs
        .create_file("/shared/new", 0o666, 1)
        .unwrap();
    assert_eq!(
        world.kernel.vfs.path_to_addr("/shared/new").unwrap(),
        old_addr
    );
    // ...and the new segment does not leak the old contents.
    let content = world.kernel.vfs.read_all("/shared/new").unwrap();
    assert!(content.is_empty());
}
