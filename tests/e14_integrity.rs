//! E14 — end-to-end disk integrity (DESIGN.md §14): checksummed
//! blocks, scrubbing, and self-healing under silent corruption.
//!
//! §13 proved the shared partition survives *fail-stop* disk deaths:
//! the device dies loudly and the journal replays. This suite attacks
//! the quieter failure mode — the medium lies. Three corruptions are
//! modeled, each with its real-disk signature:
//!
//! * **BitRot** — the write landed, then a bit flipped under it
//!   (checksum mismatch).
//! * **LostWrite** — the write was acknowledged but never reached the
//!   platter; the block keeps stale bytes (checksum mismatch, because
//!   the checksum region records *intent*).
//! * **MisdirectedWrite** — the write landed at a neighbor's address
//!   (the victim's self-describing address stamp names the wrong
//!   home — caught even when the payload checksums fine).
//!
//! The properties proven here, per the acceptance bar:
//!
//! 1. **Any single-block corruption heals invisibly**: for every
//!    corruption kind and every block index, one scrub pass detects
//!    and repairs from the replica region, and every observable —
//!    live digest, disk digest, file bytes — matches an uninjected
//!    run exactly; simulated time differs by exactly one priced
//!    repair. Counters and trace records reconcile.
//! 2. **Boot fsck heals before the first map**: corruption planted
//!    under a power cut is repaired at reboot, so a guest can never
//!    map rotted bytes — the counter keeps counting.
//! 3. **Double corruption (block + replica, journal checkpointed) is
//!    contained**: the page is poisoned, reads fail with the typed
//!    `CorruptData` error, a guest touching the page dies alone with
//!    exit 135 (the SIGBUS analog), the world settles, and fsck
//!    reports the damage in structured form.
//! 4. **Scrub on a clean disk is a priced no-op**: exact counter
//!    reconciliation, zero findings, zero state change.
//! 5. **The every-N-slices scrub hook** heals corruption during a
//!    run, without an explicit `scrub()` call.
//! 6. **The chaos sites replay from their seed** and everything they
//!    inject self-heals while replicas are intact.
//! 7. **Integrity off is an identity**: same observables, same
//!    simulated time, zero integrity-region writes.

use hemlock::{FaultPlan, FaultSite, ShareClass, TraceEvent, World, WorldExit};
use hsfs::tools::{fsck_report, FsckKind};
use hsfs::{CorruptKind, FsError};

/// Scheduler slices before a guest run counts as stuck.
const RUN_SLICES: u64 = 200_000;

/// CI sweep hook: `CHAOS_SEED=<n>` folds extra entropy into the
/// seeded corruption plans, so the nightly matrix explores disjoint
/// injection schedules while any single run stays reproducible.
fn chaos_seed_offset() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// CI sweep hook: `CPUS=<n>` runs the chaos test on an n-CPU world
/// (default 1) — corruption and repair must be CPU-count-independent.
fn cpus_override() -> u32 {
    std::env::var("CPUS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

/// CI sweep hook: `CORRUPT_SITE=<name>` restricts the seeded chaos to
/// one corruption site (`bit_rot` / `misdirected_write` /
/// `lost_write`); unset or unknown runs all three mixed.
fn corrupt_sites() -> Vec<FaultSite> {
    match std::env::var("CORRUPT_SITE").ok().as_deref() {
        Some("bit_rot") => vec![FaultSite::BitRot],
        Some("misdirected_write") => vec![FaultSite::MisdirectedWrite],
        Some("lost_write") => vec![FaultSite::LostWrite],
        _ => vec![
            FaultSite::BitRot,
            FaultSite::MisdirectedWrite,
            FaultSite::LostWrite,
        ],
    }
}

const BS: u64 = hsfs::BLOCK_SIZE as u64;

/// Blocks in the canonical data file of [`data_world`].
const FILE_BLOCKS: u64 = 5;

const ALL_KINDS: [CorruptKind; 3] = [
    CorruptKind::BitRot,
    CorruptKind::LostWrite,
    CorruptKind::MisdirectedWrite,
];

/// Deterministic byte pattern: recognizable, offset-sensitive.
fn pat(tag: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| tag.wrapping_add((i as u8).wrapping_mul(131)))
        .collect()
}

/// A world holding one multi-block data segment whose every block is
/// stamped (the shared partition is durable — and integrity-stamped —
/// from birth).
fn data_world(tag: u8) -> World {
    let mut world = World::new();
    let vfs = &mut world.kernel.vfs;
    vfs.mkdir_all("/shared/data", 0o755, 0).unwrap();
    vfs.create_file("/shared/data/f", 0o644, 0).unwrap();
    vfs.write("/shared/data/f", 0, &pat(tag, (FILE_BLOCKS * BS) as usize))
        .unwrap();
    world
}

fn trace_count(world: &World, pred: impl Fn(&TraceEvent) -> bool) -> u64 {
    world.trace().records().filter(|r| pred(&r.event)).count() as u64
}

// --- the counter module (cf. tests/e13_crash.rs) ---

const COUNTER: &str = r#"
.module counter
.text
.globl bump
bump:   la   r8, count
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        or   v0, r9, r0
        jr   ra
.data
.globl count
count:  .word 0
"#;

const MAIN: &str = r#"
.module main
.text
.globl main
main:   addi sp, sp, -8
        sw   ra, 0(sp)
        jal  bump
        lw   ra, 0(sp)
        addi sp, sp, 8
        jr   ra
"#;

fn build_counter(world: &mut World) -> String {
    world
        .install_template("/shared/lib/counter.o", COUNTER)
        .unwrap();
    world.install_template("/src/main.o", MAIN).unwrap();
    world
        .link(
            "/bin/p",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/counter.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap()
}

fn run_prog(world: &mut World, exe: &str) -> i32 {
    let pid = world.spawn(exe).unwrap();
    assert_eq!(
        world.run(RUN_SLICES),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    world.exit_code(pid).unwrap()
}

/// Corrupts every stamped block of `path` on the medium, returning how
/// many were hit. With `and_replica`, the replica copy is ruined too —
/// combined with a checkpointed journal this makes the damage
/// uncorrectable.
fn corrupt_whole_file(world: &mut World, path: &str, kind: CorruptKind, and_replica: bool) -> u64 {
    let size = world.kernel.vfs.stat(path).unwrap().size;
    let mut hit = 0;
    for b in 0..size.div_ceil(BS) {
        if world.corrupt_shared_block(path, b, kind) {
            if and_replica {
                assert!(world.corrupt_shared_replica(path, b));
            }
            hit += 1;
        }
    }
    hit
}

// --- 1. the tentpole property ---

/// For any content seed, any corruption kind, and any block index:
/// one scrub pass detects the damage, heals it from the replica
/// region, and leaves every observable byte-identical to an
/// uninjected run — with simulated time higher by exactly one priced
/// repair and counters that reconcile with the trace.
#[test]
fn any_single_block_corruption_heals_invisibly() {
    for tag in [0x11u8, 0x7Eu8] {
        // The uninjected twin: same workload, one clean scrub pass.
        let mut twin = data_world(tag);
        let clean = twin.scrub().expect("integrity is on by default");
        assert!(clean.findings.is_empty());
        let twin_stats = twin.stats();
        let twin_time = twin.costs.time(&twin_stats);
        let twin_disk = twin.kernel.vfs.shared.fs.disk_digest().unwrap();
        let twin_live = twin.shared_digest();
        for kind in ALL_KINDS {
            for block in 0..FILE_BLOCKS {
                let mut world = data_world(tag);
                assert!(
                    world.corrupt_shared_block("/shared/data/f", block, kind),
                    "tag {tag:#x} {kind:?} block {block}: corruption must land"
                );
                let report = world.scrub().unwrap();
                // MisdirectedWrite trips the address stamp (the
                // payload may checksum fine); the others trip the
                // checksum region.
                let reason = match kind {
                    CorruptKind::MisdirectedWrite => "address-stamp",
                    _ => "checksum",
                };
                assert_eq!(
                    report.findings.len(),
                    1,
                    "tag {tag:#x} {kind:?} block {block}: exactly one finding"
                );
                let f = &report.findings[0];
                assert_eq!(f.offset, block * BS);
                assert_eq!(f.reason, reason, "{kind:?} block {block}");
                assert_eq!(f.repaired_from, Some("replica"));
                // Counters reconcile with the report and the trace.
                let s = world.stats();
                assert_eq!(s.corruptions_detected, 1);
                assert_eq!(s.blocks_repaired, 1);
                assert_eq!(s.eio_kills, 0);
                assert_eq!(s.blocks_scrubbed, twin_stats.blocks_scrubbed);
                assert_eq!(
                    trace_count(&world, |e| matches!(
                        e,
                        TraceEvent::CorruptionDetected { .. }
                    )),
                    1
                );
                assert_eq!(
                    trace_count(&world, |e| matches!(e, TraceEvent::BlockRepaired { .. })),
                    1
                );
                assert_eq!(world.poisoned_blocks(), 0);
                // Every observable matches the uninjected twin…
                assert_eq!(world.shared_digest(), twin_live);
                assert_eq!(
                    world.kernel.vfs.shared.fs.disk_digest(),
                    Some(twin_disk),
                    "tag {tag:#x} {kind:?} block {block}: disk not healed"
                );
                // …except exactly one priced repair (asserted before
                // the read below, which is itself priced work).
                assert_eq!(
                    world.costs.time(&s).0,
                    twin_time.0 + world.costs.repair_ns,
                    "tag {tag:#x} {kind:?} block {block}: repair mispriced"
                );
                assert_eq!(
                    world
                        .kernel
                        .vfs
                        .read("/shared/data/f", 0, (FILE_BLOCKS * BS) as usize)
                        .unwrap(),
                    pat(tag, (FILE_BLOCKS * BS) as usize)
                );
                // Healing is idempotent: a second pass finds nothing.
                assert!(world.scrub().unwrap().findings.is_empty());
            }
        }
    }
}

// --- 2. boot fsck heals before the first map ---

/// Corruption planted under a power cut is detected and healed by
/// boot-time fsck — from the replica region, since the checkpointed
/// journal holds nothing — so a guest can never map rotted bytes.
/// The counter keeps its acknowledged value and keeps counting.
#[test]
fn boot_fsck_heals_disk_corruption_before_first_map() {
    let mut world = World::new();
    let exe = build_counter(&mut world);
    assert_eq!(run_prog(&mut world, &exe), 1);
    assert_eq!(run_prog(&mut world, &exe), 2);
    world.barrier();
    let live = world.shared_digest();
    let hit = corrupt_whole_file(
        &mut world,
        "/shared/lib/counter",
        CorruptKind::BitRot,
        false,
    );
    assert!(hit > 0, "the instance must have stamped blocks");
    world.power_cut();
    world.reboot();
    let s = world.stats();
    assert_eq!(s.corruptions_detected, hit, "log: {:?}", world.log);
    assert_eq!(s.blocks_repaired, hit);
    assert_eq!(world.poisoned_blocks(), 0);
    assert!(!world.log.iter().any(|l| l.contains("UNREPAIRED")));
    assert_eq!(world.shared_digest(), live, "boot fsck must heal the rot");
    assert_eq!(
        world.peek_shared_word("/shared/lib/counter", "count").ok(),
        Some(2),
        "acknowledged counter value survived the rot"
    );
    assert_eq!(run_prog(&mut world, "/bin/p"), 3);
    // And the healed disk replays to the same state a second time
    // (the third bump is barriered so the crash cannot discard it).
    world.barrier();
    world.power_cut();
    world.reboot();
    assert_eq!(
        world.stats().corruptions_detected,
        hit,
        "rot must not recur"
    );
    assert_eq!(
        world.peek_shared_word("/shared/lib/counter", "count").ok(),
        Some(3)
    );
}

// --- 3. uncorrectable corruption degrades gracefully ---

/// Block *and* replica corrupt, journal checkpointed: nothing can
/// heal the page. The contract is containment — fsck reports the
/// damage (structured, and with the `UNREPAIRED` log sentinel), reads
/// fail with the typed `CorruptData` error, a guest touching the page
/// dies alone with exit 135 (the SIGBUS analog), the world settles,
/// and untouched segments stay fully usable.
#[test]
fn uncorrectable_corruption_is_contained_to_the_reader() {
    let mut world = World::new();
    let exe = build_counter(&mut world);
    assert_eq!(run_prog(&mut world, &exe), 1);
    world.barrier();
    let hit = corrupt_whole_file(&mut world, "/shared/lib/counter", CorruptKind::BitRot, true);
    assert!(hit > 0);
    world.power_cut();
    world.reboot();
    // Detected, not healed, poisoned, and reported.
    let s = world.stats();
    assert_eq!(s.corruptions_detected, hit, "log: {:?}", world.log);
    assert_eq!(s.blocks_repaired, 0);
    assert_eq!(world.poisoned_blocks(), hit);
    assert!(world.log.iter().any(|l| l.contains("UNREPAIRED")));
    // The typed-error read path: no rotted byte escapes as data.
    assert_eq!(
        world.kernel.vfs.read("/shared/lib/counter", 0, 16),
        Err(FsError::CorruptData)
    );
    // Satellite: the structured fsck report names the damage.
    let report = fsck_report(&mut world.kernel.vfs.shared, false);
    assert!(report.unrepaired() >= 1);
    assert!(report
        .findings
        .iter()
        .any(|f| f.kind == FsckKind::CorruptBlock && !f.repaired && f.block.is_some()));
    // The rest of the partition is unharmed.
    let vfs = &mut world.kernel.vfs;
    vfs.mkdir_all("/shared/data", 0o755, 0).unwrap();
    vfs.create_file("/shared/data/ok", 0o644, 0).unwrap();
    vfs.write("/shared/data/ok", 0, &pat(0x33, 5000)).unwrap();
    assert_eq!(
        world.kernel.vfs.read("/shared/data/ok", 0, 5000).unwrap(),
        pat(0x33, 5000)
    );
    // A guest that touches the poisoned segment dies alone with the
    // SIGBUS-analog exit — and the world settles.
    let pid = world.spawn("/bin/p").unwrap();
    assert_eq!(world.run(RUN_SLICES), WorldExit::AllExited);
    assert_eq!(world.exit_code(pid), Some(135), "log: {:?}", world.log);
    assert_eq!(world.stats().eio_kills, 1);
    // Containment replays: the same double-fault path is deterministic.
    let pid2 = world.spawn("/bin/p").unwrap();
    assert_eq!(world.run(RUN_SLICES), WorldExit::AllExited);
    assert_eq!(world.exit_code(pid2), Some(135));
    assert_eq!(world.stats().eio_kills, 2);
}

// --- 4. clean scrub: exact reconciliation, no state change ---

#[test]
fn clean_scrub_is_a_priced_noop() {
    let mut world = data_world(0x42);
    let stamped = world.kernel.vfs.shared.fs.stamped_blocks();
    assert!(stamped >= FILE_BLOCKS, "every data block is stamped");
    let live = world.shared_digest();
    let disk = world.kernel.vfs.shared.fs.disk_digest();
    let t0 = world.costs.time(&world.stats());
    let report = world.scrub().unwrap();
    assert_eq!(report.blocks_scanned, stamped);
    assert!(report.findings.is_empty());
    let s = world.stats();
    assert_eq!(s.blocks_scrubbed, stamped);
    assert_eq!(s.corruptions_detected, 0);
    assert_eq!(s.blocks_repaired, 0);
    assert_eq!(s.eio_kills, 0);
    // Priced per verified block, exactly.
    assert_eq!(
        world.costs.time(&s).0,
        t0.0 + stamped * world.costs.scrub_block_ns
    );
    // No state change, and the pass itself is journaled.
    assert_eq!(world.shared_digest(), live);
    assert_eq!(world.kernel.vfs.shared.fs.disk_digest(), disk);
    assert_eq!(
        trace_count(&world, |e| matches!(e, TraceEvent::ScrubPass { .. })),
        1
    );
    assert_eq!(
        trace_count(&world, |e| matches!(
            e,
            TraceEvent::CorruptionDetected { .. } | TraceEvent::BlockRepaired { .. }
        )),
        0
    );
    // With integrity off there is nothing to scrub — and no cost.
    let mut off = data_world(0x42);
    off.set_integrity(false);
    assert!(!off.integrity_enabled());
    assert!(off.scrub().is_none());
    assert_eq!(off.costs.time(&off.stats()), t0);
}

// --- 5. the every-N-slices kernel scrub hook ---

/// The kernel-driven scrub pass heals medium rot *during* a run — no
/// explicit `scrub()` call — and the guest's observables are exactly
/// those of a run on a clean disk.
#[test]
fn periodic_scrub_heals_during_run() {
    let mut world = World::new();
    let exe = build_counter(&mut world);
    assert_eq!(run_prog(&mut world, &exe), 1);
    // Rot a block of the (unmapped) template object behind the
    // kernel's back, then let the scheduler-driven scrub find it.
    assert!(world.corrupt_shared_block("/shared/lib/counter.o", 0, CorruptKind::LostWrite));
    world.set_scrub_interval(Some(1));
    assert_eq!(run_prog(&mut world, &exe), 2);
    let s = world.stats();
    assert!(s.blocks_scrubbed > 0, "the every-N-slices hook must fire");
    assert_eq!(s.corruptions_detected, 1);
    assert_eq!(s.blocks_repaired, 1);
    assert_eq!(world.poisoned_blocks(), 0);
    assert!(
        trace_count(&world, |e| matches!(e, TraceEvent::ScrubPass { .. })) > 0,
        "scrub passes are journaled"
    );
    world.set_scrub_interval(None);
    let before = world.stats().blocks_scrubbed;
    assert_eq!(run_prog(&mut world, &exe), 3);
    assert_eq!(
        world.stats().blocks_scrubbed,
        before,
        "None disables the hook"
    );
}

// --- 6. the chaos sites: seeded, contained, self-healing ---

/// High-rate seeded corruption across all three sites: everything the
/// plan injects is detected by one scrub pass and healed (replicas
/// are intact), the healed disk equals the live tree, no page is
/// poisoned — and the whole outcome replays from the seed.
#[test]
fn chaos_corruption_sites_replay_and_self_heal() {
    let files = 6u8;
    let sites = corrupt_sites();
    let run = |seed: u64| {
        let mut world = World::new();
        world.set_cpus(cpus_override());
        world.arm_faults(FaultPlan::new(seed, 200_000).only(&sites));
        world
            .kernel
            .vfs
            .mkdir_all("/shared/data", 0o755, 0)
            .unwrap();
        for i in 0..files {
            let path = format!("/shared/data/f{i}");
            world.kernel.vfs.create_file(&path, 0o644, 0).unwrap();
            world
                .kernel
                .vfs
                .write(
                    &path,
                    0,
                    &pat(i.wrapping_mul(37).wrapping_add(1), 3 * BS as usize),
                )
                .unwrap();
        }
        world.arm_faults(FaultPlan::new(seed, 0));
        let report = world.scrub().expect("integrity on");
        let s = world.stats();
        assert_eq!(
            s.blocks_repaired, s.corruptions_detected,
            "seed {seed}: with replicas intact every detection heals"
        );
        assert_eq!(world.poisoned_blocks(), 0, "seed {seed}");
        assert_eq!(
            world.kernel.vfs.shared.fs.disk_digest(),
            Some(world.shared_digest()),
            "seed {seed}: healed disk must equal the live tree"
        );
        for i in 0..files {
            let path = format!("/shared/data/f{i}");
            assert_eq!(
                world.kernel.vfs.read(&path, 0, 3 * BS as usize).unwrap(),
                pat(i.wrapping_mul(37).wrapping_add(1), 3 * BS as usize),
                "seed {seed}: {path} content"
            );
        }
        // A crash after the heal recovers clean: integrity and the
        // journal compose.
        world.power_cut();
        world.reboot();
        assert!(!world.log.iter().any(|l| l.contains("UNREPAIRED")));
        (
            report.findings.len(),
            s.corruptions_detected,
            world.shared_digest(),
        )
    };
    let mut injected = 0;
    for base in 1..=6u64 {
        let seed = base ^ chaos_seed_offset();
        let first = run(seed);
        assert_eq!(first, run(seed), "seed {seed}: chaos did not replay");
        injected += first.0;
    }
    assert!(injected > 0, "a 20%-per-write plan must inject corruption");
}

// --- 7. integrity off is an identity ---

/// With the machinery off (`HSFS_INTEGRITY=off` / `set_integrity`),
/// a clean run is observable-for-observable identical — same guest
/// output, same digests, same simulated time — and writes zero
/// integrity-region blocks. (Integrity itself is also free on the
/// crash-free path: stamping costs nothing until a scrub is asked
/// for.)
#[test]
fn integrity_off_is_an_identity() {
    let run = |on: bool| {
        let mut world = World::new();
        if !on {
            world.set_integrity(false);
        }
        let exe = build_counter(&mut world);
        let a = run_prog(&mut world, &exe);
        let b = run_prog(&mut world, &exe);
        let stats = world.stats();
        let (data, integ) = world.write_amplification();
        assert_eq!(integ == 0, !on, "integrity writes iff enabled");
        assert!(data > 0);
        (
            a,
            b,
            world.shared_digest(),
            world.costs.time(&stats),
            stats.kernel.instructions,
            stats.shared_fs,
            data,
        )
    };
    assert_eq!(run(true), run(false), "integrity must be free when clean");
}
