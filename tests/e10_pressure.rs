//! E10 — memory pressure: bounded frames, eviction, swap, and the
//! deterministic OOM path (DESIGN.md §10).
//!
//! Four claims are tested here:
//!
//! 1. **Semantic invisibility** (property): for *any* frame budget ≥ 1
//!    (the slice-boundary safety valve makes one frame the minimum
//!    working set) and any scheduling quantum, a pressured run produces
//!    bit-identical guest observables — exit codes, console output, and
//!    final shared memory — to the unbounded run. Eviction costs time;
//!    it never changes answers.
//! 2. **Accounting** (acceptance): a 4-worker run at roughly half its
//!    working-set budget completes identically with evictions,
//!    writebacks, and swap-ins all observed, and every counter
//!    reconciles exactly with the `htrace` journal, record by record
//!    and nanosecond by nanosecond.
//! 3. **Deterministic OOM**: below the minimum working set with the
//!    swap area exhausted, exactly one victim (largest resident set,
//!    ties to the lowest pid) dies with exit 137, the survivors finish
//!    seed-identically, and the world settles.
//! 4. **Chaos on the swap path**: the `SwapWrite`/`SwapRead` fault
//!    sites — unreachable without pressure (see `e8_chaos`) — inject
//!    under thrash, stay contained, and replay exactly from the seed.

use hemlock::{
    CostModel, FaultPlan, FaultSite, ShareClass, TraceBuffer, Unsettled, World, WorldExit,
};
use proptest::prelude::*;

/// Scheduler slices before a run counts as unsettled.
const SETTLE_SLICES: u64 = 400_000;

/// Workers in the acceptance scenario.
const WORKERS: usize = 4;

/// Bytes of private buffer each worker churns through (4 pages).
const BUF_BYTES: u32 = 16_384;

/// Write/read stride over the buffer.
const STRIDE: u32 = 256;

/// The checksum worker `id` prints: Σ over offsets of (offset + id).
fn expected_checksum(id: u32) -> u32 {
    let touches = BUF_BYTES / STRIDE; // 64
    STRIDE * (touches * (touches - 1) / 2) + touches * id
}

/// Shared data: per-worker result slots, a completion counter, and the
/// spin-lock word guarding it (cf. `examples/parallel.rs`). Workers
/// dirty this page, so eviction must take a writeback.
const SHARED_DATA: &str = r#"
.module shared_data
.data
.globl results
results: .space 64
.globl done_count
done_count: .word 0
.globl done_lock
done_lock: .word 0
"#;

/// The worker: dirties its shared result slot *early* (so the clock
/// hand finds a dirty unreferenced shared page mid-churn), then makes
/// three passes over a 4-page private buffer — the anon working set the
/// pool must swap — and finally publishes its checksum and bumps
/// `done_count` under the test-and-set lock.
const WORKER: &str = r#"
.module worker
.text
.globl main
main:   la   r8, wid
        lw   r16, 0(r8)        ; worker id (patched by the launcher)
        la   r8, results       ; dirty results[id] now: the page ages
        sll  r12, r16, 2       ; out during the churn below and must be
        add  r8, r8, r12       ; written back before eviction
        sw   r0, 0(r8)
        li   r13, 3            ; passes over the private buffer
pass:   la   r8, buf
        li   r9, 0             ; byte offset
        li   r10, 16384        ; buffer size
fill:   add  r11, r8, r9
        add  r12, r9, r16      ; value = offset + id
        sw   r12, 0(r11)
        addi r9, r9, 256
        slt  r12, r9, r10
        bne  r12, r0, fill
        li   r17, 0            ; checksum the buffer back
        li   r9, 0
sum:    add  r11, r8, r9
        lw   r12, 0(r11)
        add  r17, r17, r12
        addi r9, r9, 256
        slt  r12, r9, r10
        bne  r12, r0, sum
        addi r13, r13, -1
        bgtz r13, pass
        la   r8, results       ; publish results[id]
        sll  r12, r16, 2
        add  r8, r8, r12
        sw   r17, 0(r8)
acq:    la   a0, done_lock     ; done_count += 1 under the TAS lock
        li   a1, 1
        li   v0, 102           ; SVC_TAS
        syscall
        bne  v0, r0, acq
        la   r8, done_count
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        la   r8, done_lock
        sw   r0, 0(r8)
        or   a0, r17, r0
        li   v0, 106           ; print_int(checksum)
        syscall
        li   v0, 0
        jr   ra
.data
.globl wid
wid:    .word 0
.globl buf
buf:    .space 16384
"#;

/// CI sweep hook: `PRESSURE_BUDGET=<frames>` overrides the calibrated
/// half-working-set budget of the acceptance test, so the chaos matrix
/// can sweep budgets without recompiling (cf. `CHAOS_SEED` in e8).
/// `0` (the matrix default) means "calibrate as usual".
fn budget_override() -> Option<u64> {
    std::env::var("PRESSURE_BUDGET")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|b| *b > 0)
}

/// CI sweep hook: `CPUS=<n>` runs the whole suite on an n-CPU world
/// (default 1). Pressure semantics — invisibility, reconciliation,
/// deterministic OOM — must hold at any CPU count.
fn cpus_override() -> u32 {
    std::env::var("CPUS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

fn build_pressure_world() -> (World, String) {
    let mut world = World::new();
    world
        .install_template("/shared/lib/shared_data.o", SHARED_DATA)
        .unwrap();
    world.install_template("/src/worker.o", WORKER).unwrap();
    let exe = world
        .link(
            "/bin/worker",
            &[
                ("/src/worker.o", ShareClass::StaticPrivate),
                ("/shared/lib/shared_data.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    (world, exe)
}

/// Everything a pressured run is judged on. Simulated time is *not*
/// here: pressure is charged honestly, so time legitimately differs.
#[derive(Debug, PartialEq, Eq)]
struct Observables {
    settled: Result<WorldExit, Unsettled>,
    exits: Vec<Option<i32>>,
    consoles: Vec<String>,
    /// `(done_count, results[0..workers])`, or `None` if no worker
    /// lived long enough to instantiate the shared segment.
    shared: Option<(u32, Vec<u32>)>,
}

/// Final shared memory, read through the registry like
/// `examples/parallel.rs` does.
fn shared_words(world: &mut World, workers: usize) -> Option<(u32, Vec<u32>)> {
    let inst = "/shared/lib/shared_data";
    let ino = world.kernel.vfs.resolve(inst).ok()?.ino;
    let base = {
        let meta = world.registry.get(&mut world.kernel.vfs, ino)?;
        meta.find_export("results").unwrap() - meta.base
    };
    let done = world.peek_shared_word(inst, "done_count").unwrap();
    let bytes = world.kernel.vfs.shared.fs.file_bytes(ino).unwrap();
    let results = (0..workers)
        .map(|i| {
            let off = base as usize + 4 * i;
            u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
        })
        .collect();
    Some((done, results))
}

/// Runs `workers` pressure workers and collects every observable. The
/// trace ring is widened so thrash-scale runs evict no records and the
/// journal reconciliation stays exact.
fn run_pressure(
    workers: usize,
    quantum: u64,
    budget: Option<u64>,
    swap_pages: Option<u32>,
    plan: Option<FaultPlan>,
) -> (Observables, World) {
    let (mut world, exe) = build_pressure_world();
    world.set_cpus(cpus_override());
    *world.trace_mut() = TraceBuffer::new(1 << 20);
    if let Some(frames) = budget {
        world.set_frame_budget(frames);
    }
    if let Some(pages) = swap_pages {
        world.set_swap_pages(pages);
    }
    if let Some(plan) = plan {
        world.arm_faults(plan);
    }
    let image_wid = {
        let bytes = world.kernel.vfs.read_all(&exe).unwrap();
        hobj::binfmt::decode_image(&bytes)
            .unwrap()
            .find_export("wid")
            .unwrap()
    };
    let mut pids = Vec::new();
    for id in 0..workers {
        let pid = world.spawn(&exe).unwrap();
        let proc = world.kernel.procs.get_mut(&pid).unwrap();
        proc.aspace
            .write_bytes(
                &mut world.kernel.vfs.shared,
                image_wid,
                &(id as u32).to_le_bytes(),
            )
            .unwrap();
        pids.push(pid);
    }
    world.quantum = quantum;
    let settled = world.run_to_settle(SETTLE_SLICES);
    let shared = shared_words(&mut world, workers);
    let obs = Observables {
        settled,
        exits: pids.iter().map(|p| world.exit_code(*p)).collect(),
        consoles: pids.iter().map(|p| world.console(*p)).collect(),
        shared,
    };
    (obs, world)
}

/// Trace records of one kind.
fn trace_count(world: &World, kind: &str) -> u64 {
    world
        .trace()
        .records()
        .filter(|r| r.event.kind() == kind)
        .count() as u64
}

/// Summed cost of one kind of trace record.
fn trace_cost(world: &World, kind: &str) -> u64 {
    world
        .trace()
        .records()
        .filter(|r| r.event.kind() == kind)
        .map(|r| r.cost_ns)
        .sum()
}

// --- 2. the acceptance scenario: half-budget thrash ------------------

/// Four workers at roughly half their working-set budget: the run
/// completes bit-identically to the unbounded run, with real eviction,
/// writeback, and swap-in traffic, and the counters reconcile exactly
/// with the `htrace` journal — both the record counts and the simulated
/// nanoseconds they carry.
#[test]
fn half_budget_thrash_is_identical_and_reconciles() {
    let (baseline, base_world) = run_pressure(WORKERS, 300, None, None, None);
    assert_eq!(baseline.settled, Ok(WorldExit::AllExited));
    assert_eq!(baseline.exits, vec![Some(0); WORKERS]);
    let expected_consoles: Vec<String> = (0..WORKERS as u32)
        .map(|id| format!("{}\n", expected_checksum(id)))
        .collect();
    assert_eq!(baseline.consoles, expected_consoles);
    let (done, results) = baseline.shared.clone().expect("segment instantiated");
    assert_eq!(done, WORKERS as u32);
    let expected_results: Vec<u32> = (0..WORKERS as u32).map(expected_checksum).collect();
    assert_eq!(results, expected_results);

    let base_stats = base_world.stats();
    assert_eq!(base_stats.page_evictions, 0, "default budget is generous");
    assert_eq!(base_stats.swap_ins, 0);
    let peak = base_stats.peak_resident_frames;
    assert!(peak >= 16, "scenario touches a real working set ({peak})");

    let budget = budget_override().unwrap_or_else(|| (peak / 2).max(1));
    let (pressured, world) = run_pressure(WORKERS, 300, Some(budget), None, None);
    assert_eq!(pressured, baseline, "eviction changed a guest observable");

    let stats = world.stats();
    assert_eq!(stats.frame_budget, budget);
    assert_eq!(stats.oom_kills, 0, "swap absorbs the pressure");
    if budget < peak {
        assert!(stats.page_evictions > 0, "over-budget run must evict");
        assert!(stats.swap_ins > 0, "re-touched pages must come back in");
        assert!(stats.page_writebacks > 0, "dirty shared pages age out");
        assert!(stats.swap_outs > 0, "anon pages go to the swap area");
    }
    assert!(
        stats.peak_resident_frames <= base_stats.peak_resident_frames,
        "pressured peak cannot exceed the unbounded peak"
    );

    // Record-by-record reconciliation with the journal.
    assert_eq!(world.trace().evicted(), 0, "ring was sized for the run");
    assert_eq!(trace_count(&world, "PageEvicted"), stats.page_evictions);
    assert_eq!(trace_count(&world, "WritebackTaken"), stats.page_writebacks);
    assert_eq!(trace_count(&world, "PageSwappedIn"), stats.swap_ins);

    // Nanosecond reconciliation: the trace carries exactly what the
    // cost model charges for pressure.
    let m = CostModel::default();
    let charged = stats.page_evictions * m.evict_ns
        + (stats.page_writebacks + stats.swap_outs) * m.swap_io_ns
        + stats.swap_ins * m.swap_in_ns;
    let traced = trace_cost(&world, "PageEvicted")
        + trace_cost(&world, "WritebackTaken")
        + trace_cost(&world, "PageSwappedIn");
    assert_eq!(traced, charged, "trace costs diverge from the cost model");

    // Pressure is charged, not hidden: the pressured run is slower in
    // simulated time by at least the pressure bill. (It is not *exactly*
    // the bill: every evicted-shared refault also pays the fault
    // protocol, and the shifted interleaving moves spin-lock work.)
    let base_time = m.time(&base_world.stats());
    let time = m.time(&stats);
    assert!(time > base_time, "thrash must cost simulated time");
    if budget < peak {
        assert!(
            time.0 - base_time.0 >= charged,
            "slowdown ({}) below the pressure bill ({charged})",
            time.0 - base_time.0
        );
    }
}

// --- 1. the property: any budget is semantically invisible -----------

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Any worker count, any quantum, any budget ≥ 1 frame: guest
    /// observables are identical to the unbounded run. (One frame is
    /// the true minimum working set because pages touched within a
    /// slice are only reclaimed at the next slice boundary.) When the
    /// budget never binds, even simulated time is identical.
    #[test]
    fn any_budget_is_semantically_invisible(
        workers in 2usize..5,
        quantum in 40u64..400,
        budget_pct in 4u64..120,
    ) {
        let (baseline, base_world) = run_pressure(workers, quantum, None, None, None);
        prop_assert_eq!(&baseline.settled, &Ok(WorldExit::AllExited));
        let peak = base_world.stats().peak_resident_frames;
        let budget = (peak * budget_pct / 100).max(1);
        let (pressured, world) = run_pressure(workers, quantum, Some(budget), None, None);
        prop_assert_eq!(&pressured, &baseline, "budget {} of peak {}", budget, peak);
        let stats = world.stats();
        prop_assert_eq!(stats.oom_kills, 0);
        if stats.page_evictions == 0 {
            let m = CostModel::default();
            prop_assert_eq!(
                m.time(&stats),
                m.time(&base_world.stats()),
                "an unbinding budget must be entirely free"
            );
        }
    }
}

// --- 3. the deterministic OOM path -----------------------------------

/// Below the minimum working set with *no* swap to fall back on: the
/// anon image pages are unevictable, so the pool kills exactly one
/// victim — all four workers are byte-identical, so the tie breaks to
/// the lowest pid — with exit 137 before it retires a single
/// instruction. The survivors finish bit-identically to their slots in
/// the unbounded run, and the whole outcome replays.
#[test]
fn oom_kills_exactly_one_victim_deterministically() {
    let (baseline, _) = run_pressure(WORKERS, 300, None, None, None);

    let run_oom = || {
        let (mut world, exe) = build_pressure_world();
        world.set_cpus(cpus_override());
        *world.trace_mut() = TraceBuffer::new(1 << 20);
        let image_wid = {
            let bytes = world.kernel.vfs.read_all(&exe).unwrap();
            hobj::binfmt::decode_image(&bytes)
                .unwrap()
                .find_export("wid")
                .unwrap()
        };
        let mut pids = Vec::new();
        for id in 0..WORKERS {
            let pid = world.spawn(&exe).unwrap();
            let proc = world.kernel.procs.get_mut(&pid).unwrap();
            proc.aspace
                .write_bytes(
                    &mut world.kernel.vfs.shared,
                    image_wid,
                    &(id as u32).to_le_bytes(),
                )
                .unwrap();
            pids.push(pid);
        }
        // Calibrate from the spawned images themselves: every worker
        // holds the same anon resident set, so a budget of 3.5× one
        // image fits three workers but not four.
        let image_frames: Vec<u64> = pids
            .iter()
            .map(|p| world.kernel.procs[p].aspace.resident_pages())
            .collect();
        let per = image_frames[0];
        assert!(per >= 4, "image spans several pages ({per})");
        assert!(
            image_frames.iter().all(|f| *f == per),
            "identical images must have identical resident sets"
        );
        world.set_frame_budget(3 * per + per / 2);
        world.set_swap_pages(0);
        world.quantum = 300;
        let settled = world.run_to_settle(SETTLE_SLICES);
        let exits: Vec<Option<i32>> = pids.iter().map(|p| world.exit_code(*p)).collect();
        let consoles: Vec<String> = pids.iter().map(|p| world.console(*p)).collect();
        (world, pids, settled, exits, consoles)
    };

    let (mut world, pids, settled, exits, consoles) = run_oom();
    // The world settles: the kill reclaimed the victim's frames at once.
    assert_eq!(settled, Ok(WorldExit::AllExited), "log: {:?}", world.log);
    // Exactly one victim, and it is the lowest pid of the (all-equal)
    // candidates; it died before running, so its console is empty.
    assert_eq!(exits[0], Some(137), "victim exits with the OOM status");
    assert_eq!(consoles[0], "", "the victim never retired an instruction");
    assert_eq!(
        exits.iter().filter(|e| **e == Some(137)).count(),
        1,
        "exactly one OOM victim: {exits:?}"
    );
    for id in 1..WORKERS {
        assert_eq!(exits[id], Some(0), "survivor {id} unharmed");
        assert_eq!(
            consoles[id], baseline.consoles[id],
            "survivor {id} must finish seed-identically"
        );
    }
    let stats = world.stats();
    assert_eq!(stats.oom_kills, 1);
    assert_eq!(stats.swap_outs, 0, "no swap area to go to");
    assert_eq!(exits[0], world.exit_code(pids[0]));
    // The recovery is typed in the journal and explained in the log.
    assert_eq!(trace_count(&world, "RecoveryTaken"), 1);
    assert!(world.trace_dump().contains("oom-kill"));
    assert!(world.log.iter().any(|l| l.contains("out of memory")));
    // The survivors' work is in shared memory; the victim's slot is the
    // template's zero.
    let (done, results) = shared_words(&mut world, WORKERS).expect("survivors instantiated it");
    assert_eq!(done, WORKERS as u32 - 1);
    assert_eq!(results[0], 0);
    for id in 1..WORKERS as u32 {
        assert_eq!(results[id as usize], expected_checksum(id));
    }

    // And the whole outcome replays exactly.
    let (_, _, settled2, exits2, consoles2) = run_oom();
    assert_eq!(settled2, settled);
    assert_eq!(exits2, exits);
    assert_eq!(consoles2, consoles);
}

/// A *tiny* swap area instead of none: eviction fills all four slots,
/// exhausts them, and the pool degrades to a deterministic OOM kill —
/// while slot recycling (a swap-in frees its slot) keeps the survivors
/// moving to completion.
#[test]
fn exhausted_swap_still_kills_deterministically() {
    let (mut world, exe) = build_pressure_world();
    world.set_cpus(cpus_override());
    let image_wid = {
        let bytes = world.kernel.vfs.read_all(&exe).unwrap();
        hobj::binfmt::decode_image(&bytes)
            .unwrap()
            .find_export("wid")
            .unwrap()
    };
    let mut pids = Vec::new();
    for id in 0..WORKERS {
        let pid = world.spawn(&exe).unwrap();
        let proc = world.kernel.procs.get_mut(&pid).unwrap();
        proc.aspace
            .write_bytes(
                &mut world.kernel.vfs.shared,
                image_wid,
                &(id as u32).to_le_bytes(),
            )
            .unwrap();
        pids.push(pid);
    }
    let per = world.kernel.procs[&pids[0]].aspace.resident_pages();
    // Low enough that four slots of swap cannot absorb the overshoot
    // (cf. the no-swap test: 3.5× fits three workers *with* headroom).
    world.set_frame_budget(3 * per + 1);
    world.set_swap_pages(4);
    world.quantum = 300;
    let settled = world.run_to_settle(SETTLE_SLICES);
    assert_eq!(settled, Ok(WorldExit::AllExited), "log: {:?}", world.log);
    let exits: Vec<Option<i32>> = pids.iter().map(|p| world.exit_code(*p)).collect();
    let stats = world.stats();
    let victims = exits.iter().filter(|e| **e == Some(137)).count() as u64;
    assert!(victims >= 1, "exhaustion must kill: {exits:?}");
    assert!(victims < WORKERS as u64, "someone must survive: {exits:?}");
    assert_eq!(stats.oom_kills, victims, "every 137 is an OOM kill");
    assert!(
        stats.swap_outs > 0,
        "the swap area was used before it ran out"
    );
    // Slots recycle as pages come back in, so total swap-outs may
    // exceed four — but never four *at once*.
    let pool = world.frame_pool().stats();
    assert_eq!(pool.swap_pages, 4);
    assert!(pool.swap_used <= 4, "slot accounting overflowed the area");
    assert!(stats.swap_ins > 0, "recycling means pages came back in");
}

// --- 4. chaos on the swap path ---------------------------------------

/// The swap-path fault sites fire under pressure, stay contained —
/// victims die, survivors print their injection-free output, bounded
/// non-settles name the live processes — and replay from the seed.
#[test]
fn swap_chaos_is_contained_and_replays() {
    let (baseline, base_world) = run_pressure(WORKERS, 300, None, None, None);
    let budget = (base_world.stats().peak_resident_frames / 2).max(1);
    let plan = |seed: u64| {
        FaultPlan::new(seed, 150_000).only(&[FaultSite::SwapWrite, FaultSite::SwapRead])
    };
    let mut fired = 0u64;
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let (out, world) = run_pressure(WORKERS, 300, Some(budget), None, Some(plan(seed)));
        let stats = world.stats();
        fired += stats.faults_injected;
        match &out.settled {
            Ok(_) => {}
            Err(Unsettled { live, waits }) => {
                assert!(*live <= WORKERS, "unbounded unsettled state");
                assert_eq!(waits.len(), *live, "every live process names its wait");
            }
        }
        // Survivors are bit-identical to the injection-free run.
        for (slot, exit) in out.exits.iter().enumerate() {
            if *exit == Some(0) {
                assert_eq!(
                    out.consoles[slot], baseline.consoles[slot],
                    "seed {seed}: survivor in slot {slot} diverged"
                );
            }
        }
        if stats.faults_injected == 0 {
            assert_eq!(out, baseline, "no injections ⇒ the unpressured answer");
        }
        // The whole outcome replays exactly from the seed.
        let (replay, replay_world) =
            run_pressure(WORKERS, 300, Some(budget), None, Some(plan(seed)));
        assert_eq!(replay, out, "seed {seed}: chaos outcome must replay");
        assert_eq!(
            replay_world.stats().faults_injected,
            stats.faults_injected,
            "seed {seed}"
        );
    }
    assert!(
        fired > 0,
        "pressure makes the swap sites reachable (cf. e8's exemption)"
    );
}
