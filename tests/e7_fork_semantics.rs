//! E7 — §5 fork semantics: "The child process that results from a fork
//! receives a copy of each segment in the private portion of the parent's
//! address space, and shares the single copy of each segment in the
//! public portion."

use hemlock::{ShareClass, World, WorldExit};

/// A public module with a word both processes will touch.
const SHARED_CELL: &str = r#"
.module cell
.text
.globl cell_addr
cell_addr:
        la   v0, cell
        jr   ra
.data
.globl cell
cell:   .word 0
"#;

#[test]
fn fork_shares_public_and_copies_private() {
    // Parent writes 5 to a private word and 50 to the shared cell, forks;
    // child overwrites both (private→7, shared→70) and exits; parent then
    // reads: private must still be 5 (copied), shared must be 70
    // (genuinely shared). Exit code = private*100 + shared = 570.
    let mut world = World::new();
    world
        .install_template("/shared/lib/cell.o", SHARED_CELL)
        .unwrap();
    world
        .install_template(
            "/src/main.o",
            r#"
            .module main
            .text
            .globl main
            main:   addi sp, sp, -16
                    sw   ra, 0(sp)
                    jal  cell_addr
                    or   r16, v0, r0    ; r16 = &cell (public)
                    la   r17, priv      ; r17 = &priv (private)
                    li   r8, 5
                    sw   r8, 0(r17)
                    li   r8, 50
                    sw   r8, 0(r16)
                    li   v0, 6          ; fork
                    syscall
                    bne  v0, r0, parent
                    ; child: clobber both
                    li   r8, 7
                    sw   r8, 0(r17)
                    li   r8, 70
                    sw   r8, 0(r16)
                    li   v0, 1          ; exit(0)
                    li   a0, 0
                    syscall
            parent: li   v0, 16         ; waitpid(any)
                    li   a0, 0
                    syscall
                    lw   r8, 0(r17)     ; private: still 5
                    li   r9, 100
                    mult r8, r9
                    mflo r8
                    lw   r9, 0(r16)     ; shared: child's 70
                    add  a0, r8, r9
                    li   v0, 1
                    syscall
            .data
            priv:   .word 0
            "#,
        )
        .unwrap();
    let exe = world
        .link(
            "/bin/forker",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/cell.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(
        world.run(300_000),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    assert_eq!(world.exit_code(pid), Some(570), "log: {:?}", world.log);
    // COW actually copied at least one page (the child's private store).
    assert!(world.stats().cow_copies >= 1);
}

#[test]
fn parent_and_child_exit_fork_with_identical_pcs() {
    // "In all cases, the parent and child come out of the fork with
    // identical program counters" — both sides execute the same
    // instruction stream and are distinguished only by $v0.
    let mut world = World::new();
    world
        .install_template(
            "/src/main.o",
            r#"
            .module main
            .text
            .globl main
            main:   li   v0, 6
                    syscall
                    ; both run this; child returns 11, parent waits and
                    ; returns child_status + 1
                    beq  v0, r0, child
                    li   v0, 16
                    li   a0, 0
                    syscall
                    addi a0, v1, 1
                    li   v0, 1
                    syscall
            child:  li   v0, 1
                    li   a0, 11
                    syscall
            "#,
        )
        .unwrap();
    let exe = world
        .link("/bin/f", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(world.run(200_000), WorldExit::AllExited);
    assert_eq!(world.exit_code(pid), Some(12));
}

#[test]
fn forked_child_inherits_lazy_module_mappings() {
    // A child forked *before* a lazy module's first touch must be able
    // to trigger and complete the lazy link itself (the link state is
    // inherited).
    let mut world = World::new();
    world
        .install_template(
            "/shared/lib/late.o",
            r#"
            .module late
            .text
            .globl late_fn
            late_fn:
                    addi sp, sp, -8
                    sw   ra, 0(sp)
                    jal  helper_fn
                    addi v0, v0, 1
                    lw   ra, 0(sp)
                    addi sp, sp, 8
                    jr   ra
            .uses   helper
            "#,
        )
        .unwrap();
    world
        .install_template(
            "/shared/lib/helper.o",
            ".module helper\n.text\n.globl helper_fn\nhelper_fn: li v0, 41\njr ra\n",
        )
        .unwrap();
    world
        .install_template(
            "/src/main.o",
            r#"
            .module main
            .text
            .globl main
            main:   addi sp, sp, -8
                    sw   ra, 0(sp)
                    li   v0, 6          ; fork before any touch of `late`
                    syscall
                    bne  v0, r0, parent
                    jal  late_fn        ; child triggers the lazy link
                    or   a0, v0, r0
                    li   v0, 1
                    syscall
            parent: li   v0, 16
                    li   a0, 0
                    syscall
                    or   a0, v1, r0     ; propagate child's status (42)
                    li   v0, 1
                    syscall
            "#,
        )
        .unwrap();
    let exe = world
        .link(
            "/bin/f",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/late.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(
        world.run(400_000),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    assert_eq!(world.exit_code(pid), Some(42), "log: {:?}", world.log);
}

#[test]
fn concurrent_children_share_one_public_cell() {
    // N children each bump the shared cell through kernel semaphores for
    // mutual exclusion; the sum must equal the bump count.
    let mut world = World::new();
    world
        .install_template("/shared/lib/cell.o", SHARED_CELL)
        .unwrap();
    world
        .install_template(
            "/src/main.o",
            r#"
            .module main
            .text
            .globl main
            main:   addi sp, sp, -8
                    sw   ra, 0(sp)
                    jal  cell_addr
                    or   r16, v0, r0    ; &cell
                    li   v0, 12         ; sem_create(1) = mutex
                    li   a0, 1
                    syscall
                    or   r17, v0, r0
                    li   r18, 4         ; fork 4 children
            spawn:  blez r18, waitall
                    li   v0, 6
                    syscall
                    beq  v0, r0, work
                    addi r18, r18, -1
                    b    spawn
            work:   li   r19, 25        ; 25 bumps each
            loop:   blez r19, done
                    li   v0, 13         ; P(mutex)
                    or   a0, r17, r0
                    syscall
                    lw   r8, 0(r16)
                    addi r8, r8, 1
                    sw   r8, 0(r16)
                    li   v0, 14         ; V(mutex)
                    or   a0, r17, r0
                    syscall
                    addi r19, r19, -1
                    b    loop
            done:   li   v0, 1
                    li   a0, 0
                    syscall
            waitall:
                    li   r18, 4
            reap:   blez r18, finish
                    li   v0, 16
                    li   a0, 0
                    syscall
                    addi r18, r18, -1
                    b    reap
            finish: lw   a0, 0(r16)
                    li   v0, 1
                    syscall
            "#,
        )
        .unwrap();
    let exe = world
        .link(
            "/bin/par",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/cell.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    // Small quantum to force interleaving between the children.
    world.quantum = 17;
    assert_eq!(
        world.run(2_000_000),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    assert_eq!(world.exit_code(pid), Some(100), "log: {:?}", world.log);
}
