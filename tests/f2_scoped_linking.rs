//! F2 — Figure 2: scoped linking and hierarchical module inclusion.
//!
//! "Linking a single module may therefore cause a chain reaction that
//! ends up incorporating modules that the original programmer knew
//! nothing about. ... Scoped linking provides ... freedom from ambiguity,
//! in a language-independent way."

use hemlock::{ShareClass, World, WorldExit};

/// The program's own `helper` returns 1.
const MAIN: &str = r#"
.module main
.text
.globl main
.globl helper
main:   addi sp, sp, -8
        sw   ra, 0(sp)
        jal  subsystem_entry
        lw   ra, 0(sp)
        addi sp, sp, 8
        jr   ra
helper: li   v0, 1
        jr   ra
"#;

/// A subsystem whose entry calls `helper` — intending *its own* helper
/// (returns 2), found via its scoped search path.
const SUBSYSTEM: &str = r#"
.module subsystem
.search /shared/subsys
.text
.globl subsystem_entry
subsystem_entry:
        addi sp, sp, -8
        sw   ra, 0(sp)
        jal  helper
        lw   ra, 0(sp)
        addi sp, sp, 8
        jr   ra
"#;

/// The subsystem's private helper, living on the subsystem's search path.
const SUB_HELPER: &str = r#"
.module subhelper
.text
.globl helper
helper: li   v0, 2
        jr   ra
"#;

fn world_with(subsystem_src: &str) -> World {
    let mut world = World::new();
    world
        .kernel
        .vfs
        .mkdir_all("/shared/subsys", 0o777, 0)
        .unwrap();
    world.install_template("/src/main.o", MAIN).unwrap();
    world
        .install_template("/shared/lib/subsystem.o", subsystem_src)
        .unwrap();
    world
        .install_template("/shared/subsys/subhelper.o", SUB_HELPER)
        .unwrap();
    world
}

fn run(world: &mut World) -> i32 {
    let exe = world
        .link(
            "/bin/a.out",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/subsystem.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(
        world.run(200_000),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    world.exit_code(pid).unwrap()
}

#[test]
fn subsystem_symbols_resolve_in_subsystem_scope_first() {
    // Both the program and the subsystem's search path define `helper`.
    // Scoped linking must pick the subsystem's own (2), not the
    // program's (1) — "preserves abstraction by allowing a process to
    // link in a large subsystem ... without worrying that symbols in
    // that subsystem will cause naming conflicts."
    let mut world = world_with(SUBSYSTEM);
    assert_eq!(run(&mut world), 2, "log: {:?}", world.log);
    // The chain reaction loaded subhelper even though the main program
    // never named it.
    assert!(world.kernel.vfs.resolve("/shared/subsys/subhelper").is_ok());
}

#[test]
fn unscoped_reference_escalates_to_parent() {
    // Without its own search path, the subsystem's `helper` reference
    // climbs to the root and binds to the program's helper (1) —
    // "Modules wishing to rely on a symbol being resolved by the parent
    // can simply neglect to provide this information."
    let unscoped = SUBSYSTEM.replace(".search /shared/subsys\n", "");
    let mut world = world_with(&unscoped);
    assert_eq!(run(&mut world), 1, "log: {:?}", world.log);
    // The shared instance was patched with a *private* address — the §5
    // safety hazard the paper accepts; the runtime counts it.
    assert!(
        world.stats().ldl.cross_domain_resolutions >= 1,
        "{:?}",
        world.stats().ldl
    );
}

#[test]
fn uses_list_loads_named_modules() {
    // A `.uses` module list (rather than a directory path) triggers the
    // recursive inclusion of Figure 2.
    let with_uses = SUBSYSTEM.replace(
        ".search /shared/subsys\n",
        ".uses subhelper\n.search /shared/subsys\n",
    );
    let mut world = world_with(&with_uses);
    assert_eq!(run(&mut world), 2, "log: {:?}", world.log);
}

#[test]
fn grandchild_resolution_climbs_two_levels() {
    // main → mid → leaf; leaf's reference to `shared_val_fn` is defined
    // only at the root. The escalation must climb leaf → mid → root.
    let mut world = World::new();
    world.kernel.vfs.mkdir_all("/shared/l1", 0o777, 0).unwrap();
    world.kernel.vfs.mkdir_all("/shared/l2", 0o777, 0).unwrap();
    world
        .install_template(
            "/src/main.o",
            r#"
            .module main
            .text
            .globl main
            .globl root_fn
            main:   addi sp, sp, -8
                    sw   ra, 0(sp)
                    jal  mid_fn
                    lw   ra, 0(sp)
                    addi sp, sp, 8
                    jr   ra
            root_fn:
                    li   v0, 9
                    jr   ra
            "#,
        )
        .unwrap();
    world
        .install_template(
            "/shared/l1/mid.o",
            r#"
            .module mid
            .search /shared/l2
            .text
            .globl mid_fn
            mid_fn: addi sp, sp, -8
                    sw   ra, 0(sp)
                    jal  leaf_fn
                    lw   ra, 0(sp)
                    addi sp, sp, 8
                    jr   ra
            "#,
        )
        .unwrap();
    world
        .install_template(
            "/shared/l2/leaf.o",
            r#"
            .module leaf
            .text
            .globl leaf_fn
            leaf_fn:
                    addi sp, sp, -8
                    sw   ra, 0(sp)
                    jal  root_fn      ; defined only at the root
                    addi v0, v0, 20
                    lw   ra, 0(sp)
                    addi sp, sp, 8
                    jr   ra
            "#,
        )
        .unwrap();
    let exe = world
        .link(
            "/bin/a.out",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/l1/mid.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(
        world.run(300_000),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    assert_eq!(world.exit_code(pid), Some(29), "log: {:?}", world.log);
    // leaf was loaded as a child of mid, and both ended up linked.
    let stats = world.stats();
    assert!(stats.ldl.lazy_links >= 2, "{:?}", stats.ldl);
}

#[test]
fn root_unresolved_reference_faults_at_use_not_at_link() {
    // "References that remain undefined at the root of the DAG are left
    // unresolved in the running program. If encountered during execution
    // they result in segmentation faults."
    let mut world = World::new();
    world
        .install_template(
            "/shared/lib/broken.o",
            r#"
            .module broken
            .text
            .globl broken_entry
            .globl broken_ok
            broken_entry:
                    jal  nowhere_to_be_found
                    jr   ra
            broken_ok:
                    li   v0, 3
                    jr   ra
            "#,
        )
        .unwrap();
    world
        .install_template(
            "/src/main.o",
            r#"
            .module main
            .text
            .globl main
            main:   addi sp, sp, -8
                    sw   ra, 0(sp)
                    jal  broken_ok    ; uses only the *good* entry
                    lw   ra, 0(sp)
                    addi sp, sp, 8
                    jr   ra
            "#,
        )
        .unwrap();
    let exe = world
        .link(
            "/bin/a.out",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/broken.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    // The program runs fine as long as the unresolved path is not taken.
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(
        world.run(200_000),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    assert_eq!(world.exit_code(pid), Some(3), "log: {:?}", world.log);
    let stats = world.stats();
    assert!(stats.ldl.symbols_unresolved >= 1, "{:?}", stats.ldl);

    // A program that *does* take the broken path dies at use.
    let mut world2 = World::new();
    world2
        .install_template("/shared/lib/broken.o", &world_broken_src())
        .unwrap();
    world2
        .install_template(
            "/src/main.o",
            ".module main\n.text\n.globl main\nmain: addi sp, sp, -8\nsw ra, 0(sp)\njal broken_entry\nlw ra, 0(sp)\naddi sp, sp, 8\njr ra\n",
        )
        .unwrap();
    let exe2 = world2
        .link(
            "/bin/b.out",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/broken.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let pid2 = world2.spawn(&exe2).unwrap();
    assert_eq!(world2.run(200_000), WorldExit::AllExited);
    assert_eq!(world2.exit_code(pid2), Some(139), "log: {:?}", world2.log);
}

fn world_broken_src() -> String {
    r#"
    .module broken
    .text
    .globl broken_entry
    .globl broken_ok
    broken_entry:
            jal  nowhere_to_be_found
            jr   ra
    broken_ok:
            li   v0, 3
            jr   ra
    "#
    .to_string()
}

#[test]
fn sibling_subsystems_with_same_symbol_do_not_collide() {
    // Two subsystems each bundle their own `impl_fn`; each must see its
    // own, and the program calls both.
    let mut world = World::new();
    for (dir, val) in [("alpha", 10), ("beta", 20)] {
        world
            .kernel
            .vfs
            .mkdir_all(&format!("/shared/{dir}"), 0o777, 0)
            .unwrap();
        world
            .install_template(
                &format!("/shared/{dir}/{dir}impl.o"),
                &format!(
                    ".module {dir}impl\n.text\n.globl impl_fn\nimpl_fn: li v0, {val}\njr ra\n"
                ),
            )
            .unwrap();
        world
            .install_template(
                &format!("/shared/lib/{dir}.o"),
                &format!(
                    ".module {dir}\n.search /shared/{dir}\n.text\n.globl {dir}_entry\n{dir}_entry: addi sp, sp, -8\nsw ra, 0(sp)\njal impl_fn\nlw ra, 0(sp)\naddi sp, sp, 8\njr ra\n"
                ),
            )
            .unwrap();
    }
    world
        .install_template(
            "/src/main.o",
            r#"
            .module main
            .text
            .globl main
            main:   addi sp, sp, -16
                    sw   ra, 0(sp)
                    jal  alpha_entry
                    sw   v0, 4(sp)
                    jal  beta_entry
                    lw   r8, 4(sp)
                    add  v0, v0, r8     ; 10 + 20
                    lw   ra, 0(sp)
                    addi sp, sp, 16
                    jr   ra
            "#,
        )
        .unwrap();
    let exe = world
        .link(
            "/bin/a.out",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/alpha.o", ShareClass::DynamicPublic),
                ("/shared/lib/beta.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(
        world.run(300_000),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    assert_eq!(world.exit_code(pid), Some(30), "log: {:?}", world.log);
}
