//! E9 — the happens-before sanitizer (`crates/hsan`, DESIGN.md §9).
//!
//! Four claims are tested here:
//!
//! 1. **Zero perturbation** (differential harness): arming the sanitizer
//!    changes *nothing* observable — console output, exit codes, and
//!    simulated time are bit-identical to an unarmed run.
//! 2. **Soundness on disciplined code** (property): an N-worker shared
//!    counter guarded by the test-and-set trap reports zero races under
//!    any scheduling quantum.
//! 3. **Completeness on the seeded bug** (property + acceptance): the
//!    lock-elided variant of the same program reports the race, naming
//!    the shared segment's path, the offset of the counter word, and
//!    both racing PCs.
//! 4. **No false positives under chaos**: the E8 scenarios run armed
//!    with fault injection report no races, and the sanitizer does not
//!    perturb chaos determinism.

use hemlock::{CostModel, FaultPlan, ShareClass, World, WorldExit};
use proptest::prelude::*;

/// Scheduler slices before a run counts as unsettled.
const SETTLE_SLICES: u64 = 400_000;

/// CI sweep hook: `CPUS=<n>` runs the whole suite on an n-CPU world
/// (default 1). The sanitizer's verdicts are schedule-dependent but
/// must stay deterministic and false-positive-free for any CPU count.
fn cpus_override() -> u32 {
    std::env::var("CPUS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

/// The shared data of the counter application: the counter and the
/// spin-lock word that guards it (cf. `examples/parallel.rs`).
const SHARED_DATA: &str = r#"
.module shcount
.data
.globl count
count:  .word 0
.globl lock
lock:   .word 0
"#;

/// A worker that increments `count` ITERS times under the test-and-set
/// spin lock.
const WORKER_LOCKED: &str = r#"
.module worker
.text
.globl main
main:   li   r16, 5            ; iterations
loop:
acq:    la   a0, lock
        li   a1, 1
        li   v0, 102           ; SVC_TAS
        syscall
        bne  v0, r0, acq       ; spin while old value was 1
        la   r8, count         ; critical section: count += 1
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        la   r8, lock          ; unlock
        sw   r0, 0(r8)
        addi r16, r16, -1
        bgtz r16, loop
        li   v0, 0
        jr   ra
"#;

/// The same worker with the lock elided — the seeded race.
const WORKER_ELIDED: &str = r#"
.module worker
.text
.globl main
main:   li   r16, 5            ; iterations
loop:   la   r8, count         ; unguarded: count += 1
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        addi r16, r16, -1
        bgtz r16, loop
        li   v0, 0
        jr   ra
"#;

/// Builds the counter world and returns it with the executable path.
fn build_counter_world(worker_src: &str) -> (World, String) {
    let mut world = World::new();
    world
        .install_template("/shared/lib/shcount.o", SHARED_DATA)
        .unwrap();
    world.install_template("/src/worker.o", worker_src).unwrap();
    let exe = world
        .link(
            "/bin/worker",
            &[
                ("/src/worker.o", ShareClass::StaticPrivate),
                ("/shared/lib/shcount.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    (world, exe)
}

/// Everything a differential run is judged on.
#[derive(Debug, PartialEq, Eq)]
struct Observables {
    exit: WorldExit,
    exits: Vec<Option<i32>>,
    consoles: Vec<String>,
    sim_time: hemlock::SimTime,
    count: u32,
}

/// Runs `workers` copies of the worker with the given quantum,
/// optionally armed, and collects every guest-observable.
fn run_counter(
    worker_src: &str,
    workers: usize,
    quantum: u64,
    armed: bool,
) -> (Observables, World) {
    let (mut world, exe) = build_counter_world(worker_src);
    world.set_cpus(cpus_override());
    if armed {
        world.arm_sanitizer();
    }
    let mut pids = Vec::new();
    for _ in 0..workers {
        pids.push(world.spawn(&exe).unwrap());
    }
    world.quantum = quantum;
    let exit = world.run_to_settle(SETTLE_SLICES).expect("world settles");
    let stats = world.stats();
    let obs = Observables {
        exit,
        exits: pids.iter().map(|p| world.exit_code(*p)).collect(),
        consoles: pids.iter().map(|p| world.console(*p)).collect(),
        sim_time: CostModel::default().time(&stats),
        count: world
            .peek_shared_word("/shared/lib/shcount", "count")
            .unwrap(),
    };
    (obs, world)
}

/// Byte offset of an exported word within its shared segment file.
fn export_offset(world: &mut World, instance: &str, symbol: &str) -> u32 {
    let vnode = world.kernel.vfs.resolve(instance).unwrap();
    let meta = world
        .registry
        .get(&mut world.kernel.vfs, vnode.ino)
        .unwrap();
    meta.find_export(symbol).unwrap() - meta.base
}

// --- 1. the differential harness ------------------------------------

/// Armed and unarmed runs of the *same* program are bit-identical in
/// every guest observable: consoles, exit codes, simulated time, and
/// the final counter value. The sanitizer watches; it never touches.
#[test]
fn armed_run_is_observably_identical() {
    for (src, label) in [(WORKER_LOCKED, "locked"), (WORKER_ELIDED, "elided")] {
        let (unarmed, _) = run_counter(src, 3, 50, false);
        let (armed, world) = run_counter(src, 3, 50, true);
        assert_eq!(unarmed, armed, "{label}: armed run perturbed the guest");
        // The armed run did real work on the side.
        let stats = world.stats();
        assert!(stats.sync_edges > 0, "{label}: no sync edges observed");
    }
}

/// The unarmed fast path stays free: no sanitizer counters move.
#[test]
fn unarmed_world_reports_nothing() {
    let (_, world) = run_counter(WORKER_ELIDED, 3, 50, false);
    let stats = world.stats();
    assert!(!world.sanitizer_armed());
    assert_eq!(stats.races_detected, 0);
    assert_eq!(stats.sync_edges, 0);
    assert_eq!(stats.shadow_bytes, 0);
    assert!(world.races().is_empty());
}

// --- 2 & 3. the property: locked clean, elided caught ----------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Any scheduling quantum, any worker count: the TAS-guarded counter
    /// is race-free, sums correctly, and the lock-elided twin of the
    /// same schedule is reported — naming the segment and the counter's
    /// offset.
    #[test]
    fn lock_discipline_separates_clean_from_racy(
        quantum in 10u64..400,
        workers in 2usize..5,
    ) {
        // Disciplined: zero reports, correct sum.
        let (obs, world) = run_counter(WORKER_LOCKED, workers, quantum, true);
        prop_assert_eq!(world.stats().races_detected, 0, "log: {:?}", world.log);
        prop_assert!(world.races().is_empty());
        prop_assert_eq!(obs.count, workers as u32 * 5);
        prop_assert_eq!(obs.exit, WorldExit::AllExited);

        // Lock-elided: the race is reported and located.
        let (_, mut world) = run_counter(WORKER_ELIDED, workers, quantum, true);
        let stats = world.stats();
        prop_assert!(stats.races_detected >= 1, "elided lock went unreported");
        let count_off = export_offset(&mut world, "/shared/lib/shcount", "count");
        let races = world.races();
        prop_assert!(!races.is_empty());
        let r = &races[0];
        prop_assert_eq!(&r.path[..], "/shared/lib/shcount");
        prop_assert_eq!(r.offset, count_off, "race must name the counter word");
        prop_assert!(r.first_pid != r.second_pid, "cross-process by definition");
    }
}

// --- 3b. the acceptance test: both PCs, precisely --------------------

/// The seeded race is reported with *both* racing PCs, and they are the
/// worker's actual load/store instructions — provable because every
/// worker runs the identical image, so the PCs must fall inside the
/// worker module's text and differ only by the access kind.
#[test]
fn race_report_names_both_pcs_and_the_segment() {
    let (_, world) = run_counter(WORKER_ELIDED, 3, 50, true);
    let races = world.races();
    assert!(!races.is_empty(), "log: {:?}", world.log);
    let r = &races[0];
    assert_eq!(r.path, "/shared/lib/shcount");
    assert_ne!(r.first_pid, r.second_pid);
    assert_ne!(r.first_pc, 0, "first PC recorded");
    assert_ne!(r.second_pc, 0, "second PC recorded");
    assert!(r.second_is_write || r.first_is_write, "at least one store");
    // The trace ring carries the same finding at zero simulated cost.
    let race_records: Vec<_> = world
        .trace()
        .records()
        .filter(|rec| rec.event.kind() == "RaceDetected")
        .collect();
    assert_eq!(race_records.len(), races.len());
    assert!(race_records.iter().all(|rec| rec.cost_ns == 0));
    // And the log names the path for humans.
    assert!(world
        .log
        .iter()
        .any(|l| l.contains("data race on /shared/lib/shcount")));
}

/// Racing on one word must not silence a later race on a different
/// word, and each word is reported at most once.
#[test]
fn one_report_per_raced_word() {
    let (_, world) = run_counter(WORKER_ELIDED, 4, 30, true);
    let races = world.races();
    let mut offsets: Vec<u32> = races.iter().map(|r| r.offset).collect();
    offsets.sort_unstable();
    offsets.dedup();
    assert_eq!(offsets.len(), races.len(), "duplicate report for a word");
}

// --- 3c. memory-pressure interaction ---------------------------------

/// The differential harness under thrash (E10): with the frame budget
/// squeezed to half the unbounded peak, arming the sanitizer still
/// changes *nothing* — not the guest observables, not the simulated
/// time, and not a single eviction decision. The monitor only ever
/// fires after a successful translation, so repage faults are observed
/// exactly once and the clock hand never sees the difference.
#[test]
fn armed_run_is_identical_under_thrash() {
    let run_pressured = |armed: bool, budget: Option<u64>| {
        let (mut world, exe) = build_counter_world(WORKER_LOCKED);
        if let Some(frames) = budget {
            world.set_frame_budget(frames);
        }
        if armed {
            world.arm_sanitizer();
        }
        let mut pids = Vec::new();
        for _ in 0..4 {
            pids.push(world.spawn(&exe).unwrap());
        }
        world.quantum = 50;
        let exit = world.run_to_settle(SETTLE_SLICES).unwrap_or_else(|u| {
            let exits: Vec<_> = pids.iter().map(|p| world.exit_code(*p)).collect();
            panic!(
                "world settles: {u:?}\nlog: {:?}\nexits: {exits:?}\nstats: {:?}",
                world.log,
                world.stats()
            )
        });
        let stats = world.stats();
        let obs = Observables {
            exit,
            exits: pids.iter().map(|p| world.exit_code(*p)).collect(),
            consoles: pids.iter().map(|p| world.console(*p)).collect(),
            sim_time: CostModel::default().time(&stats),
            count: world
                .peek_shared_word("/shared/lib/shcount", "count")
                .unwrap(),
        };
        (obs, world)
    };
    let (_, calibration) = run_pressured(false, None);
    let budget = (calibration.stats().peak_resident_frames / 2).max(1);
    let (unarmed, unarmed_world) = run_pressured(false, Some(budget));
    let (armed, armed_world) = run_pressured(true, Some(budget));
    assert_eq!(unarmed, armed, "the sanitizer perturbed a thrashing run");
    let u = unarmed_world.stats();
    let a = armed_world.stats();
    assert!(u.page_evictions > 0, "the squeezed budget really thrashed");
    assert_eq!(
        a.page_evictions, u.page_evictions,
        "eviction decisions moved"
    );
    assert_eq!(a.page_writebacks, u.page_writebacks);
    assert_eq!(a.swap_outs, u.swap_outs);
    assert_eq!(a.swap_ins, u.swap_ins);
    assert_eq!(a.oom_kills, 0);
    assert!(a.sync_edges > 0, "the armed run still observed the locks");
    assert_eq!(a.races_detected, 0, "repage faults are not races");
}

// --- 4. chaos interaction --------------------------------------------

/// The E8 chaos scenario (a *pure* public module, so concurrent
/// processes share only read-only state), run with both the fault plan
/// and the sanitizer armed: injections kill victims and the sanitizer
/// must stay silent — dying processes, spawn refusals, and retries are
/// not data races. The armed run also replays chaos identically.
#[test]
fn chaos_with_sanitizer_has_no_false_positives() {
    let build = || {
        let mut world = World::new();
        world
            .install_template(
                "/shared/lib/mathmod.o",
                r#"
                .module mathmod
                .text
                .globl offset
                offset: la   r8, base
                        lw   r9, 0(r8)
                        add  v0, a0, r9
                        jr   ra
                .data
                .globl base
                base:   .word 100
                "#,
            )
            .unwrap();
        world
            .install_template(
                "/src/main.o",
                r#"
                .module main
                .text
                .globl main
                main:   addi sp, sp, -8
                        sw   ra, 0(sp)
                        li   a0, 21
                        jal  offset         ; 121
                        or   a0, v0, r0
                        li   v0, 106        ; print_int
                        syscall
                        lw   ra, 0(sp)
                        addi sp, sp, 8
                        li   v0, 0
                        jr   ra
                "#,
            )
            .unwrap();
        let exe = world
            .link(
                "/bin/chaos",
                &[
                    ("/src/main.o", ShareClass::StaticPrivate),
                    ("/shared/lib/mathmod.o", ShareClass::DynamicPublic),
                ],
            )
            .unwrap();
        (world, exe)
    };
    let run = |seed: u64, sanitize: bool| {
        let (mut world, exe) = build();
        world.set_cpus(cpus_override());
        world.arm_faults(FaultPlan::new(seed, 50_000));
        if sanitize {
            world.arm_sanitizer();
        }
        let mut pids = Vec::new();
        for _ in 0..3 {
            pids.push(world.spawn(&exe).ok());
        }
        let settled = world.run_to_settle(SETTLE_SLICES);
        let stats = world.stats();
        let exits: Vec<Option<i32>> = pids
            .iter()
            .map(|p| p.and_then(|p| world.exit_code(p)))
            .collect();
        let consoles: Vec<Option<String>> =
            pids.iter().map(|p| p.map(|p| world.console(p))).collect();
        (world, settled, stats, exits, consoles)
    };
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let (_, plain_settled, plain_stats, plain_exits, plain_consoles) = run(seed, false);
        let (world, settled, stats, exits, consoles) = run(seed, true);
        // No false positives: reads of a pure module, injection victims,
        // and recovery paths are not races.
        assert_eq!(stats.races_detected, 0, "seed {seed}: log {:?}", world.log);
        assert!(world.races().is_empty());
        assert_eq!(
            world
                .trace()
                .records()
                .filter(|r| r.event.kind() == "RaceDetected")
                .count(),
            0
        );
        // Counters reconcile exactly as in the unsanitized chaos run.
        assert_eq!(stats.faults_injected, plain_stats.faults_injected);
        assert_eq!(stats.faults_recovered, plain_stats.faults_recovered);
        assert!(stats.faults_recovered <= stats.faults_injected);
        // And the sanitizer did not perturb the chaos outcome at all.
        assert_eq!(settled, plain_settled, "seed {seed}");
        assert_eq!(exits, plain_exits, "seed {seed}");
        assert_eq!(consoles, plain_consoles, "seed {seed}");
        assert!(stats.sync_edges > 0, "lifecycle edges were observed");
    }
}
