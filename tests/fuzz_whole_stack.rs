//! Property tests across the whole stack: randomly generated guest
//! programs are assembled, linked, and run. Whatever the *guest* does —
//! wild stores, bad jumps, runaway loops, divide by zero — the *host*
//! must never panic, and every object the assembler accepts must
//! validate and round-trip through the binary format. The same bar
//! holds across *crash boundaries*: random interleavings of writes,
//! barriers, armed disk deaths, power cuts, and reboots must keep the
//! host panic-free and every recovery convergent (DESIGN.md §13).

use hemlock::{ShareClass, World};
use hobj::binfmt;
use hobj::hasm::assemble;
use hsfs::CorruptKind;
use proptest::prelude::*;

/// One random instruction line from a mixed bag: arithmetic, memory,
/// branches (to one of a few labels), jumps, syscalls with random
/// numbers, and loads/stores through partially initialized registers.
fn instr_line(seed: (u8, u8, u8, u16)) -> String {
    let (op, a, b, imm) = seed;
    let ra = a % 24 + 8; // r8..r31
    let rb = b % 24 + 8;
    let simm = (imm as i16 as i32).clamp(-32768, 32767);
    match op % 14 {
        0 => format!("addi r{ra}, r{rb}, {simm}"),
        1 => format!("add r{ra}, r{rb}, r{ra}"),
        2 => format!("sub r{ra}, r{ra}, r{rb}"),
        3 => format!("sll r{ra}, r{rb}, {}", imm % 32),
        4 => format!("li r{ra}, {}", imm as u32 * 977),
        5 => format!("lw r{ra}, {}(r{rb})", (simm / 4) * 4),
        6 => format!("sw r{ra}, {}(r{rb})", (simm / 4) * 4),
        7 => format!("beq r{ra}, r{rb}, l{}", imm % 4),
        8 => format!("bne r{ra}, r{rb}, l{}", imm % 4),
        9 => "jal helper".to_string(),
        10 => format!("la r{ra}, shared_word"),
        11 => format!("div r{ra}, r{rb}"),
        12 => format!("li v0, {}\nsyscall", imm % 40), // random syscalls
        _ => "nop".to_string(),
    }
}

fn program(seeds: &[(u8, u8, u8, u16)]) -> String {
    let mut body = String::new();
    let mut emitted = [false; 4];
    for (i, s) in seeds.iter().enumerate() {
        // Sprinkle the branch-target labels through the body.
        let l = (i / 4) % 4;
        if i % 4 == 0 && !emitted[l] {
            emitted[l] = true;
            body.push_str(&format!("l{l}:\n"));
        }
        body.push_str(&instr_line(*s));
        body.push('\n');
    }
    // Ensure all labels exist even for short bodies.
    for (l, done) in emitted.iter().enumerate() {
        if !done {
            body.push_str(&format!("l{l}:\n"));
        }
    }
    format!(
        ".module fuzz\n.text\n.globl main\nmain:\n{body}\n\
         li v0, 1\nli a0, 0\nsyscall\n\
         .globl helper\nhelper: jr ra\n\
         .data\n.globl shared_word\nshared_word: .word 7\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The whole pipeline survives arbitrary guest behavior.
    #[test]
    fn random_programs_never_panic_the_host(
        seeds in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>()),
            1..40,
        )
    ) {
        let src = program(&seeds);
        let mut world = World::new();
        world.install_template("/src/fuzz.o", &src).unwrap();
        let exe = world
            .link("/bin/fuzz", &[("/src/fuzz.o", ShareClass::StaticPrivate)])
            .unwrap();
        let pid = world.spawn(&exe).unwrap();
        // Bounded run: any exit (normal, killed, loop-limited) is fine.
        world.quantum = 500;
        let _ = world.run(150);
        let _ = world.exit_code(pid);
    }

    /// Everything the assembler accepts validates and round-trips.
    #[test]
    fn assembled_objects_validate_and_round_trip(
        seeds in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>()),
            1..40,
        )
    ) {
        let src = program(&seeds);
        let obj = assemble("fuzz", &src).unwrap();
        prop_assert_eq!(obj.validate(), Ok(()));
        let bytes = binfmt::encode_object(&obj);
        prop_assert_eq!(binfmt::decode_object(&bytes).unwrap(), obj);
    }

    /// Linking a random program against a shared module never panics,
    /// and the image always round-trips.
    #[test]
    fn random_programs_link_against_shared_modules(
        seeds in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>()),
            1..20,
        )
    ) {
        let src = program(&seeds);
        let mut world = World::new();
        world.install_template("/src/fuzz.o", &src).unwrap();
        world
            .install_template(
                "/shared/lib/sharedmod.o",
                ".module sharedmod\n.text\n.globl shared_fn\nshared_fn: li v0, 3\njr ra\n",
            )
            .unwrap();
        let exe = world
            .link(
                "/bin/fuzz",
                &[
                    ("/src/fuzz.o", ShareClass::StaticPrivate),
                    ("/shared/lib/sharedmod.o", ShareClass::DynamicPublic),
                ],
            )
            .unwrap();
        let raw = world.kernel.vfs.read_all(&exe).unwrap();
        let img = binfmt::decode_image(&raw).unwrap();
        prop_assert_eq!(binfmt::decode_image(&binfmt::encode_image(&img)).unwrap(), img);
        let pid = world.spawn(&exe).unwrap();
        world.quantum = 500;
        let _ = world.run(150);
        let _ = world.exit_code(pid);
    }

    /// Random interleavings of the crash-lifecycle surface: guest runs
    /// (mapped stores into a public module), raw segment writes,
    /// barriers, armed disk deaths, power cuts, reboots — and, since
    /// §14, silent single-block corruption and scrub passes — in any
    /// order. The host never panics, spawning while powered off is
    /// refused (not honored late), every scrub's counters reconcile
    /// (replicas stay intact, so every detection heals and nothing
    /// poisons), and every reboot recovers to a state where the live
    /// tree equals the disk image, a second journal replay is a no-op,
    /// and fsck finds nothing it cannot repair.
    #[test]
    fn crash_lifecycle_interleavings_recover(
        ops in proptest::collection::vec(
            (0u8..9, any::<u8>(), any::<u16>(), any::<bool>()),
            1..24,
        )
    ) {
        let mut world = World::new();
        world
            .install_template(
                "/shared/lib/cell.o",
                ".module cell\n.text\n.globl poke\npoke: la r8, word\nsw a0, 0(r8)\n\
                 lw v0, 0(r8)\njr ra\n.data\n.globl word\nword: .word 0\n",
            )
            .unwrap();
        world
            .install_template(
                "/src/main.o",
                ".module main\n.text\n.globl main\nmain: addi sp, sp, -8\nsw ra, 0(sp)\n\
                 li a0, 9\njal poke\nlw ra, 0(sp)\naddi sp, sp, 8\nli v0, 0\njr ra\n",
            )
            .unwrap();
        let exe = world
            .link(
                "/bin/fuzz",
                &[
                    ("/src/main.o", ShareClass::StaticPrivate),
                    ("/shared/lib/cell.o", ShareClass::DynamicPublic),
                ],
            )
            .unwrap();
        let check_recovered = |world: &mut World| {
            assert!(
                !world.log.iter().any(|l| l.contains("UNREPAIRED")),
                "fsck left damage unrepaired: {:?}", world.log
            );
            let digest = world.shared_digest();
            assert_eq!(
                world.kernel.vfs.shared.fs.disk_digest(),
                Some(digest),
                "live tree diverged from the disk image"
            );
            world.kernel.vfs.shared.fs.replay_journal();
            assert_eq!(
                world.shared_digest(), digest,
                "journal replay is not idempotent"
            );
        };
        for (op, a, imm, flag) in ops {
            match op {
                0 => {
                    // Spawn + run: relinking may legitimately fail if a
                    // crash ate the template; it must not panic.
                    if world.powered() {
                        if let Ok(pid) = world.spawn(&exe) {
                            let _ = world.run(u64::from(imm % 64) + 1);
                            let _ = world.exit_code(pid);
                        }
                    }
                }
                1 => {
                    if world.powered() {
                        let path = format!("/shared/data/f{}", a % 3);
                        let _ = world.kernel.vfs.mkdir_all("/shared/data", 0o755, 0);
                        let _ = world.kernel.vfs.create_file(&path, 0o644, 0);
                        let data = vec![a; usize::from(imm % 2048) + 1];
                        let _ = world.kernel.vfs.write(&path, u64::from(imm % 8192), &data);
                    }
                }
                2 => {
                    if world.powered() {
                        world.barrier();
                    }
                }
                3 => {
                    if world.powered() {
                        let k = world.disk_seq() + u64::from(a % 48);
                        world.set_crash_at(k, flag);
                    }
                }
                4 => {
                    if world.powered() {
                        world.power_cut();
                    }
                }
                5 => {
                    if !world.powered() {
                        world.reboot();
                        check_recovered(&mut world);
                    }
                }
                6 => {
                    // Spawning into a powered-off world must be refused.
                    if !world.powered() {
                        prop_assert!(world.spawn(&exe).is_err());
                    }
                }
                7 => {
                    // Silent single-block corruption of a data segment
                    // (the replica region is left intact, so whatever
                    // detects this — scrub or boot fsck — must heal it).
                    if world.powered() {
                        let path = format!("/shared/data/f{}", a % 3);
                        let kind = match imm % 3 {
                            0 => CorruptKind::BitRot,
                            1 => CorruptKind::LostWrite,
                            _ => CorruptKind::MisdirectedWrite,
                        };
                        let _ = world.corrupt_shared_block(&path, u64::from(a % 4), kind);
                    }
                }
                _ => {
                    // A scrub pass at an arbitrary point: with replicas
                    // intact every detection repairs, nothing poisons,
                    // and the running counters reconcile.
                    if world.powered() {
                        let _ = world.scrub();
                        let s = world.stats();
                        prop_assert_eq!(s.blocks_repaired, s.corruptions_detected);
                        prop_assert_eq!(world.poisoned_blocks(), 0);
                    }
                }
            }
        }
        // However the schedule left the machine, it comes back — a
        // clean reboot if it was still powered (flushing the pipeline),
        // a recovery if it was not.
        world.reboot();
        check_recovered(&mut world);
        if let Ok(pid) = world.spawn(&exe) {
            let _ = world.run(500);
            let _ = world.exit_code(pid);
        }
    }
}
