//! T1 — Table 1: the four sharing classes.
//!
//! Table 1 of the paper defines the classes along three axes: *when
//! linked* (static link time vs. run time), *new instance
//! created/destroyed for each process* (yes for private, no for public),
//! and *default portion of address space* (private vs. public). These
//! tests verify each cell behaviorally, end to end.

use hemlock::{ShareClass, World, WorldExit};
use hkernel::layout;

/// A module with one exported counter and a bump function.
const COUNTER: &str = r#"
.module counter
.text
.globl bump
bump:   la   r8, count
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        or   v0, r9, r0
        jr   ra
.data
.globl count
count:  .word 0
"#;

/// main: bump twice, return the second result.
const MAIN: &str = r#"
.module main
.text
.globl main
main:   addi sp, sp, -8
        sw   ra, 0(sp)
        jal  bump
        jal  bump
        lw   ra, 0(sp)
        addi sp, sp, 8
        jr   ra
"#;

fn run_once(world: &mut World, exe: &str) -> i32 {
    let pid = world.spawn(exe).unwrap();
    let exit = world.run(100_000);
    assert_eq!(exit, WorldExit::AllExited, "log: {:?}", world.log);
    world.exit_code(pid).unwrap()
}

fn build(world: &mut World, class: ShareClass, counter_path: &str, exe: &str) -> String {
    world.install_template("/src/main.o", MAIN).unwrap();
    world.install_template(counter_path, COUNTER).unwrap();
    world
        .link(
            exe,
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                (counter_path, class),
            ],
        )
        .unwrap()
}

#[test]
fn static_private_new_instance_per_process() {
    let mut world = World::new();
    let exe = build(
        &mut world,
        ShareClass::StaticPrivate,
        "/src/counter.o",
        "/bin/p",
    );
    // Each run starts from a fresh copy: both runs return 2.
    assert_eq!(run_once(&mut world, &exe), 2);
    assert_eq!(run_once(&mut world, &exe), 2);
}

#[test]
fn dynamic_private_new_instance_per_process() {
    let mut world = World::new();
    let exe = build(
        &mut world,
        ShareClass::DynamicPrivate,
        "/src/counter.o",
        "/bin/p",
    );
    assert_eq!(run_once(&mut world, &exe), 2);
    assert_eq!(run_once(&mut world, &exe), 2);
    // The module was linked at *run* time into the private region.
    let warn_free = world.log.iter().all(|l| !l.contains("cannot find"));
    assert!(warn_free, "log: {:?}", world.log);
}

#[test]
fn static_public_persistent_shared_instance() {
    let mut world = World::new();
    let exe = build(
        &mut world,
        ShareClass::StaticPublic,
        "/shared/lib/counter.o",
        "/bin/p",
    );
    // The instance exists already at static link time, before any run —
    // "It also creates any public static modules that do not yet exist".
    assert_eq!(
        world
            .peek_shared_word("/shared/lib/counter", "count")
            .unwrap(),
        0
    );
    // Counts accumulate across processes: persistence.
    assert_eq!(run_once(&mut world, &exe), 2);
    assert_eq!(run_once(&mut world, &exe), 4);
    assert_eq!(
        world
            .peek_shared_word("/shared/lib/counter", "count")
            .unwrap(),
        4
    );
}

#[test]
fn dynamic_public_created_on_first_use() {
    let mut world = World::new();
    let exe = build(
        &mut world,
        ShareClass::DynamicPublic,
        "/shared/lib/counter.o",
        "/bin/p",
    );
    // Not created at link time (only on first use, by ldl).
    assert!(world.kernel.vfs.resolve("/shared/lib/counter").is_err());
    assert_eq!(run_once(&mut world, &exe), 2);
    assert!(world.kernel.vfs.resolve("/shared/lib/counter").is_ok());
    // Second process shares the same instance.
    assert_eq!(run_once(&mut world, &exe), 4);
}

#[test]
fn public_modules_live_in_public_address_region() {
    let mut world = World::new();
    let exe = build(
        &mut world,
        ShareClass::DynamicPublic,
        "/shared/lib/counter.o",
        "/bin/p",
    );
    let pid = world.spawn(&exe).unwrap();
    world.run(100_000);
    let base = {
        let state = world.link_state(pid).expect("link state exists");
        state.modules["counter"].base
    };
    assert!(layout::is_public(base), "module at {base:#x}");
    // And its address is the slot address of its backing file.
    let addr = world
        .kernel
        .vfs
        .path_to_addr("/shared/lib/counter")
        .unwrap();
    assert_eq!(addr, base);
}

#[test]
fn private_modules_live_in_private_address_region() {
    let mut world = World::new();
    let exe = build(
        &mut world,
        ShareClass::DynamicPrivate,
        "/src/counter.o",
        "/bin/p",
    );
    let pid = world.spawn(&exe).unwrap();
    world.run(100_000);
    let state = world.link_state(pid).expect("link state exists");
    let m = &state.modules["counter"];
    assert!(!layout::is_public(m.base), "module at {:#x}", m.base);
    assert!(m.base >= layout::DYN_PRIVATE_BASE && m.base < layout::DATA_END);
}

#[test]
fn same_template_different_classes_differ_in_persistence() {
    // The decisive Table 1 behavior: private = fresh per process,
    // public = one persistent instance. Same template, both ways.
    let mut world = World::new();
    world.install_template("/src/main.o", MAIN).unwrap();
    world.install_template("/src/counter.o", COUNTER).unwrap();
    world
        .install_template("/shared/lib/counter.o", COUNTER)
        .unwrap();
    let private = world
        .link(
            "/bin/private",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/src/counter.o", ShareClass::DynamicPrivate),
            ],
        )
        .unwrap();
    let public = world
        .link(
            "/bin/public",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/counter.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    assert_eq!(run_once(&mut world, &private), 2);
    assert_eq!(run_once(&mut world, &private), 2); // fresh again
    assert_eq!(run_once(&mut world, &public), 2);
    assert_eq!(run_once(&mut world, &public), 4); // persisted
}
