//! E15 — persistent prelink snapshots (DESIGN.md §15) are a pure
//! cross-boot accelerator: semantically invisible, priced exactly, and
//! crash-safe.
//!
//! After a successful resolve, `ldl` serializes the resolved link map
//! into a checksummed snapshot on the shared partition; a later boot
//! validates it for one flat `snapshot_validate_ns` charge and maps the
//! pre-resolved segments directly instead of re-running scoped symbol
//! search. Five claims are tested here:
//!
//! 1. **Cold identity**: over quantum × cpus ∈ {1,4}, a snapshots-on
//!    cold run and a snapshots-off run of the same multi-worker SMP
//!    scenario are indistinguishable — identical observables, identical
//!    simulated time (misses and rebuilds are free by design), an
//!    identical trace stream (modulo the 0-cost `SnapshotMiss` /
//!    `SnapshotRebuilt` diagnostics), and identical `WorldStats` modulo
//!    the four snapshot counters.
//! 2. **Warm boots win**: across a clean reboot the snapshot world
//!    relinks for the flat validation charge — same exits, same
//!    consoles, zero symbols resolved, strictly less simulated time
//!    than the snapshots-off twin; and a *stale* snapshot (module bytes
//!    changed underneath it) costs exactly `snapshot_validate_ns` more
//!    than never having had one.
//! 3. **Counters reconcile**: each `LdlStats` snapshot counter folded
//!    into `WorldStats` equals the count of its `htrace` record kind.
//! 4. **Corruption never panics**: any stomped byte, truncation, or
//!    emptied snapshot file decodes to `LinkError::BadSnapshot`, is
//!    counted as an invalidation, and falls back to a full resolve that
//!    still computes the right answer (satellite: fuzzed-bytes
//!    regression).
//! 5. **Crashes never resurrect a stale snapshot**: for *every* disk
//!    write index across the first boot's link/rebuild window, killing
//!    the disk there, rebooting, and respawning behaves exactly like
//!    the same recovery with snapshots disabled — hits only when the
//!    record and every module it describes committed coherently.

use hemlock::{CostModel, ShareClass, TraceBuffer, World, WorldExit};
use proptest::prelude::*;

/// Scheduler slices before a run counts as stuck / unsettled.
const RUN_SLICES: u64 = 200_000;
const SETTLE_SLICES: u64 = 400_000;

/// CI sweep hook: `CPUS=<n>` runs the crash sweep on an n-CPU world.
fn cpus_override() -> u32 {
    std::env::var("CPUS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

// --- the pure-code chain (no data mutation ⇒ warm boots validate) ----

const LIB2: &str = r#"
.module lib2
.text
.globl f2
f2:     li   v0, 42
        jr   ra
.data
.globl pad
pad:    .word 0
"#;

const LIB1: &str = r#"
.module lib1
.uses lib2
.text
.globl f1
f1:     addi sp, sp, -8
        sw   ra, 0(sp)
        jal  f2
        lw   ra, 0(sp)
        addi sp, sp, 8
        addi v0, v0, 1
        jr   ra
"#;

const CMAIN: &str = r#"
.module cmain
.text
.globl main
main:   addi sp, sp, -8
        sw   ra, 0(sp)
        jal  f1
        or   r16, v0, r0
        or   a0, v0, r0
        li   v0, 106           ; print_int(result)
        syscall
        or   v0, r16, r0
        lw   ra, 0(sp)
        addi sp, sp, 8
        jr   ra
"#;

/// The chain's answer: f2's 42 plus f1's increment.
const CHAIN_ANSWER: i32 = 43;

fn build_chain(world: &mut World) -> String {
    world.install_template("/shared/lib/lib1.o", LIB1).unwrap();
    world.install_template("/shared/lib/lib2.o", LIB2).unwrap();
    world.install_template("/src/cmain.o", CMAIN).unwrap();
    world
        .link(
            "/bin/chain",
            &[
                ("/src/cmain.o", ShareClass::StaticPrivate),
                ("/shared/lib/lib1.o", ShareClass::DynamicPublic),
                ("/shared/lib/lib2.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap()
}

/// Spawns, runs to completion, returns (exit code, console).
fn run_prog(world: &mut World, exe: &str) -> (i32, String) {
    let pid = world.spawn(exe).unwrap();
    assert_eq!(
        world.run(RUN_SLICES),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    (world.exit_code(pid).unwrap(), world.console(pid))
}

fn sim_ns(world: &World) -> u64 {
    CostModel::default().time(&world.stats()).0
}

fn snap_path(world: &World) -> String {
    hlink::snapshot::path_for(&world.kernel.vfs, "/bin/chain")
}

// --- 1. cold identity (the differential property) ---------------------

/// The e12 pressure worker, linked as four *distinct* executables so
/// the cold boot consults four distinct snapshot records — four free
/// misses, four free rebuilds — instead of memoizing after the first.
const SHARED_DATA: &str = r#"
.module shared_data
.data
.globl results
results: .space 64
.globl done_count
done_count: .word 0
.globl done_lock
done_lock: .word 0
"#;

const WORKER: &str = r#"
.module worker
.text
.globl main
main:   la   r8, wid
        lw   r16, 0(r8)
        la   r8, results
        sll  r12, r16, 2
        add  r8, r8, r12
        sw   r0, 0(r8)
        li   r13, 2
pass:   la   r8, buf
        li   r9, 0
        li   r10, 8192
fill:   add  r11, r8, r9
        add  r12, r9, r16
        sw   r12, 0(r11)
        addi r9, r9, 256
        slt  r12, r9, r10
        bne  r12, r0, fill
        li   r17, 0
        li   r9, 0
sum:    add  r11, r8, r9
        lw   r12, 0(r11)
        add  r17, r17, r12
        addi r9, r9, 256
        slt  r12, r9, r10
        bne  r12, r0, sum
        addi r13, r13, -1
        bgtz r13, pass
        la   r8, results
        sll  r12, r16, 2
        add  r8, r8, r12
        sw   r17, 0(r8)
acq:    la   a0, done_lock
        li   a1, 1
        li   v0, 102           ; SVC_TAS
        syscall
        bne  v0, r0, acq
        la   r8, done_count
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        la   r8, done_lock
        sw   r0, 0(r8)
        or   a0, r17, r0
        li   v0, 106           ; print_int(checksum)
        syscall
        li   v0, 0
        jr   ra
.data
.globl wid
wid:    .word 0
.globl buf
buf:    .space 8192
"#;

const WORKERS: usize = 4;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Replay {
    settled: String,
    exits: Vec<Option<i32>>,
    consoles: Vec<String>,
    shared: Option<(u32, Vec<u32>)>,
    sim_ns: u64,
    trace: Vec<String>,
    stats: String,
}

/// Final shared memory of the pressure scenario (cf. `e12_bbcache.rs`).
fn shared_words(world: &mut World) -> Option<(u32, Vec<u32>)> {
    let inst = "/shared/lib/shared_data";
    let ino = world.kernel.vfs.resolve(inst).ok()?.ino;
    let base = {
        let meta = world.registry.get(&mut world.kernel.vfs, ino)?;
        meta.find_export("results").unwrap() - meta.base
    };
    let done = world.peek_shared_word(inst, "done_count").unwrap();
    let bytes = world.kernel.vfs.shared.fs.file_bytes(ino).unwrap();
    let results = (0..WORKERS)
        .map(|i| {
            let off = base as usize + 4 * i;
            u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
        })
        .collect();
    Some((done, results))
}

/// `WorldStats` with the four snapshot counters (mirrors *and* the
/// embedded `ldl` copies) masked off — the only fields allowed to
/// differ between a snapshots-on and a snapshots-off cold run.
fn masked_stats(world: &World) -> String {
    let mut stats = world.stats();
    stats.snapshot_hits = 0;
    stats.snapshot_misses = 0;
    stats.snapshot_invalidations = 0;
    stats.snapshot_rebuilds = 0;
    stats.ldl.snapshot_hits = 0;
    stats.ldl.snapshot_misses = 0;
    stats.ldl.snapshot_invalidations = 0;
    stats.ldl.snapshot_rebuilds = 0;
    format!("{stats:?}")
}

/// The trace stream for comparison. `SnapshotMiss` and
/// `SnapshotRebuilt` are the cache's own 0-cost diagnostics — they
/// exist only on a snapshots-on run. `SnapshotHit` and
/// `SnapshotInvalidated` are *priced*, so they stay in: one appearing
/// on a cold run is an identity violation, not noise.
fn comparable_trace(world: &World) -> Vec<String> {
    world
        .trace()
        .records()
        .filter(|r| !matches!(r.event.kind(), "SnapshotMiss" | "SnapshotRebuilt"))
        .map(|r| format!("{} {} {}", r.pid, r.cost_ns, r.event))
        .collect()
}

/// Runs the four-distinct-exe pressure scenario cold and collects
/// every observable.
fn run_cold(snapshots: bool, quantum: u64, cpus: u32) -> (Replay, World) {
    let mut world = World::new();
    *world.trace_mut() = TraceBuffer::new(1 << 20);
    world.set_link_snapshots(snapshots);
    world.set_cpus(cpus);
    world
        .install_template("/shared/lib/shared_data.o", SHARED_DATA)
        .unwrap();
    world.install_template("/src/worker.o", WORKER).unwrap();
    let mut pids = Vec::new();
    for id in 0..WORKERS {
        let exe = world
            .link(
                &format!("/bin/worker{id}"),
                &[
                    ("/src/worker.o", ShareClass::StaticPrivate),
                    ("/shared/lib/shared_data.o", ShareClass::DynamicPublic),
                ],
            )
            .unwrap();
        let image_wid = {
            let bytes = world.kernel.vfs.read_all(&exe).unwrap();
            hobj::binfmt::decode_image(&bytes)
                .unwrap()
                .find_export("wid")
                .unwrap()
        };
        let pid = world.spawn(&exe).unwrap();
        let proc = world.kernel.procs.get_mut(&pid).unwrap();
        proc.aspace
            .write_bytes(
                &mut world.kernel.vfs.shared,
                image_wid,
                &(id as u32).to_le_bytes(),
            )
            .unwrap();
        pids.push(pid);
    }
    world.quantum = quantum;
    let settled = world.run_to_settle(SETTLE_SLICES);
    let shared = shared_words(&mut world);
    let replay = Replay {
        settled: format!("{settled:?}"),
        exits: pids.iter().map(|p| world.exit_code(*p)).collect(),
        consoles: pids.iter().map(|p| world.console(*p)).collect(),
        shared,
        sim_ns: sim_ns(&world),
        trace: comparable_trace(&world),
        stats: masked_stats(&world),
    };
    (replay, world)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// For any quantum and cpus ∈ {1,4}: a snapshots-on cold run is
    /// indistinguishable from a snapshots-off run in every observable,
    /// the simulated clock, the trace stream, and `WorldStats` modulo
    /// the four snapshot counters — and the counters themselves show
    /// the free paths (miss, rebuild) were actually taken.
    #[test]
    fn cold_boot_with_snapshots_is_semantically_invisible(
        quantum in 100u64..500,
        four_cpus in 0u32..2,
    ) {
        let cpus = if four_cpus == 1 { 4 } else { 1 };
        let (on, on_world) = run_cold(true, quantum, cpus);
        let (off, off_world) = run_cold(false, quantum, cpus);
        prop_assert_eq!(&on, &off, "cold snapshots must be invisible (cpus={})", cpus);

        // The on-run exercised the free paths; the off-run never moved.
        let s = on_world.stats();
        prop_assert!(s.snapshot_misses >= WORKERS as u64, "{s:?}");
        prop_assert!(s.snapshot_rebuilds >= WORKERS as u64, "{s:?}");
        prop_assert_eq!(s.snapshot_hits, 0, "a cold run cannot hit");
        prop_assert_eq!(s.snapshot_invalidations, 0, "nothing to invalidate");
        let idle = off_world.stats();
        prop_assert_eq!(
            idle.snapshot_misses + idle.snapshot_rebuilds + idle.snapshot_hits,
            0,
            "disabled snapshots moved: {:?}",
            idle
        );
    }

    /// Across a clean reboot, the snapshot world relinks from the
    /// cached record: same exits, same consoles, zero symbols resolved
    /// on the warm boot, and strictly less simulated time than the
    /// snapshots-off twin resolving from scratch.
    #[test]
    fn warm_boot_hits_and_outruns_full_resolution(
        quantum in 100u64..500,
        four_cpus in 0u32..2,
    ) {
        let cpus = if four_cpus == 1 { 4 } else { 1 };
        let boot_twice = |snapshots: bool| {
            let mut world = World::new();
            world.set_link_snapshots(snapshots);
            world.set_cpus(cpus);
            world.quantum = quantum;
            let exe = build_chain(&mut world);
            let first = run_prog(&mut world, &exe);
            world.reboot();
            let t0 = sim_ns(&world);
            let resolved0 = world.stats().ldl.symbols_resolved;
            let second = run_prog(&mut world, "/bin/chain");
            let stats = world.stats();
            (
                first,
                second,
                sim_ns(&world) - t0,
                stats.ldl.symbols_resolved - resolved0,
                stats,
            )
        };
        let (on1, on2, warm_on, resolved_on, on) = boot_twice(true);
        let (off1, off2, warm_off, resolved_off, _) = boot_twice(false);

        // Observable identity, both boots.
        prop_assert_eq!(&on1, &off1);
        prop_assert_eq!(&on2, &off2);
        prop_assert_eq!(on2.0, CHAIN_ANSWER);

        // The warm boot went through the snapshot: one hit, no symbol
        // search, and a cheaper second boot than full resolution.
        prop_assert!(on.snapshot_hits >= 1, "{on:?}");
        prop_assert_eq!(resolved_on, 0, "a hit must skip resolution");
        prop_assert!(resolved_off > 0, "the twin must actually resolve");
        prop_assert!(
            warm_on < warm_off,
            "warm boot must be cheaper: {} vs {}",
            warm_on,
            warm_off
        );
    }
}

// --- 2. exact pricing of the stale path --------------------------------

/// A stale snapshot (a module's bytes changed underneath it) costs
/// exactly one `snapshot_validate_ns` on top of the full resolution the
/// snapshots-off twin performs — the failed validation is the *only*
/// extra charge. The dirty word lands across a reboot because the
/// snapshot is consulted once per (executable, boot); a same-boot
/// respawn never re-reads it.
#[test]
fn stale_snapshot_costs_exactly_one_validation() {
    let run = |snapshots: bool| {
        let mut world = World::new();
        world.set_link_snapshots(snapshots);
        let exe = build_chain(&mut world);
        assert_eq!(run_prog(&mut world, &exe).0, CHAIN_ANSWER);
        world.reboot();
        // Dirty lib2's instance through its exported data word: the
        // code is untouched (same answer), but the content digest the
        // snapshot recorded no longer matches.
        world
            .poke_shared_word("/shared/lib/lib2", "pad", 0xDEAD_BEEF)
            .unwrap();
        assert_eq!(run_prog(&mut world, "/bin/chain").0, CHAIN_ANSWER);
        (sim_ns(&world), world.stats())
    };
    let (t_on, on) = run(true);
    let (t_off, off) = run(false);
    assert_eq!(on.snapshot_invalidations, 1, "{on:?}");
    assert_eq!(on.snapshot_hits, 0, "{on:?}");
    assert_eq!(off.snapshot_invalidations, 0, "{off:?}");
    assert_eq!(
        t_on,
        t_off + CostModel::default().snapshot_validate_ns,
        "stale run must cost exactly one flat validation more"
    );
}

/// The `LDL_SNAPSHOT=off` env hook disables the subsystem at
/// `World::new` (the CI nightly matrix runs the whole suite this way).
#[test]
fn env_hook_disables_snapshots() {
    // Env mutation is process-global; keep the window tiny and restore.
    std::env::set_var("LDL_SNAPSHOT", "off");
    let mut world = World::new();
    std::env::remove_var("LDL_SNAPSHOT");
    let exe = build_chain(&mut world);
    assert_eq!(run_prog(&mut world, &exe).0, CHAIN_ANSWER);
    let s = world.stats();
    assert_eq!(
        s.snapshot_misses + s.snapshot_rebuilds + s.snapshot_hits,
        0,
        "env-disabled snapshots moved: {s:?}"
    );
    assert!(
        world.kernel.vfs.read_all(&snap_path(&world)).is_err(),
        "no snapshot file may be written while disabled"
    );
}

// --- 3. counters reconcile with the trace ------------------------------

/// Every `LdlStats` snapshot counter folded into `WorldStats` equals
/// the number of `htrace` records of the matching kind — one priced
/// record per priced event, one free record per free event.
#[test]
fn snapshot_counters_match_trace_record_counts() {
    let mut world = World::new();
    // Force the state under test: the nightly matrix runs this suite
    // with `LDL_SNAPSHOT=off` in the environment too.
    world.set_link_snapshots(true);
    *world.trace_mut() = TraceBuffer::new(1 << 20);
    let exe = build_chain(&mut world);
    // Miss + rebuilds (cold), then a warm-boot hit, then an
    // invalidation (stomped record) followed by a fresh rebuild. Each
    // phase gets its own boot: the snapshot is consulted once per
    // (executable, boot), so only a reboot re-opens the record.
    assert_eq!(run_prog(&mut world, &exe).0, CHAIN_ANSWER);
    world.reboot();
    assert_eq!(run_prog(&mut world, &exe).0, CHAIN_ANSWER);
    let path = snap_path(&world);
    world
        .kernel
        .vfs
        .write(&path, 8, &[0xFF, 0xFF, 0xFF])
        .unwrap();
    world.reboot();
    assert_eq!(run_prog(&mut world, &exe).0, CHAIN_ANSWER);

    let s = world.stats();
    assert!(s.snapshot_misses >= 1, "{s:?}");
    assert!(s.snapshot_hits >= 1, "{s:?}");
    assert!(s.snapshot_invalidations >= 1, "{s:?}");
    assert!(s.snapshot_rebuilds >= 2, "{s:?}");
    let count = |kind: &str| {
        world
            .trace()
            .records()
            .filter(|r| r.event.kind() == kind)
            .count() as u64
    };
    assert_eq!(s.snapshot_hits, count("SnapshotHit"));
    assert_eq!(s.snapshot_misses, count("SnapshotMiss"));
    assert_eq!(s.snapshot_invalidations, count("SnapshotInvalidated"));
    assert_eq!(s.snapshot_rebuilds, count("SnapshotRebuilt"));
    // And the WorldStats mirrors are the folded LdlStats, verbatim.
    assert_eq!(s.snapshot_hits, s.ldl.snapshot_hits);
    assert_eq!(s.snapshot_misses, s.ldl.snapshot_misses);
    assert_eq!(s.snapshot_invalidations, s.ldl.snapshot_invalidations);
    assert_eq!(s.snapshot_rebuilds, s.ldl.snapshot_rebuilds);
}

// --- 4. corruption never panics (fuzzed-bytes regression) --------------

/// One corrupted-snapshot round: stomp the file with `mutate`, reboot
/// (the once-per-boot consult memo means only a fresh boot re-reads the
/// record), respawn, and the world must fall back to a full resolve —
/// right answer, one more invalidation, never a panic.
fn corrupt_and_respawn(mutate: impl FnOnce(&mut World, &str)) {
    let mut world = World::new();
    world.set_link_snapshots(true);
    let exe = build_chain(&mut world);
    assert_eq!(run_prog(&mut world, &exe).0, CHAIN_ANSWER);
    let path = snap_path(&world);
    assert!(
        !world.kernel.vfs.read_all(&path).unwrap().is_empty(),
        "cold run must have written the snapshot"
    );
    mutate(&mut world, &path);
    world.reboot();
    let before = world.stats().snapshot_invalidations;
    assert_eq!(run_prog(&mut world, "/bin/chain").0, CHAIN_ANSWER);
    let s = world.stats();
    assert_eq!(
        s.snapshot_invalidations,
        before + 1,
        "corruption must be detected and counted: {s:?}"
    );
    assert_eq!(s.snapshot_hits, 0, "corrupt bytes must never validate");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Any single stomped byte anywhere in the stored snapshot — magic,
    /// version, body, checksum trailer — is rejected as `BadSnapshot`.
    #[test]
    fn fuzzed_snapshot_bytes_fall_back_cleanly(pos in 0usize..4096, flip in 1u8..255) {
        corrupt_and_respawn(|world, path| {
            let bytes = world.kernel.vfs.read_all(path).unwrap();
            let pos = pos % bytes.len();
            world
                .kernel
                .vfs
                .write(path, pos as u64, &[bytes[pos] ^ flip])
                .unwrap();
        });
    }

    /// Any truncation — including to zero bytes — is rejected too.
    #[test]
    fn truncated_snapshot_falls_back_cleanly(cut in 0u64..4096) {
        corrupt_and_respawn(|world, path| {
            let len = world.kernel.vfs.read_all(path).unwrap().len() as u64;
            let v = world.kernel.vfs.resolve(path).unwrap();
            world.kernel.vfs.truncate_vnode(v, cut % len).unwrap();
        });
    }
}

/// An *absent* snapshot is a miss, not an invalidation — removing the
/// file sends the next boot's spawn down the free cold path.
#[test]
fn removed_snapshot_is_a_miss_not_an_invalidation() {
    let mut world = World::new();
    world.set_link_snapshots(true);
    let exe = build_chain(&mut world);
    assert_eq!(run_prog(&mut world, &exe).0, CHAIN_ANSWER);
    let path = snap_path(&world);
    world.kernel.vfs.unlink(&path).unwrap();
    world.reboot();
    let before = world.stats();
    assert_eq!(run_prog(&mut world, "/bin/chain").0, CHAIN_ANSWER);
    let s = world.stats();
    assert_eq!(s.snapshot_misses, before.snapshot_misses + 1, "{s:?}");
    assert_eq!(
        s.snapshot_invalidations, before.snapshot_invalidations,
        "{s:?}"
    );
}

// --- 5. the crash sweep ------------------------------------------------

/// Builds the chain, barriers (so the module objects are acknowledged),
/// then runs the first boot — instances, metadata, and the snapshot all
/// flow through the journaled write pipeline after the barrier. The
/// sweep kills the disk at every write index in that window.
fn chain_boot1(world: &mut World) {
    let exe = build_chain(world);
    world.barrier();
    assert_eq!(run_prog(world, &exe).0, CHAIN_ANSWER);
}

/// One crash run: die at write `k`, reboot, optionally disable
/// snapshots for the respawn (the live run is identical either way, so
/// both twins recover from the byte-identical disk), and respawn.
fn crash_respawn(k: u64, tear: bool, cpus: u32, snapshots: bool) -> (World, (i32, String)) {
    let mut world = World::new();
    // Boot 1 always rebuilds a snapshot (regardless of the ambient
    // `LDL_SNAPSHOT` environment): the sweep is over *its* write units.
    world.set_link_snapshots(true);
    world.set_cpus(cpus);
    world.set_crash_at(k, tear);
    chain_boot1(&mut world);
    world.power_cut();
    world.reboot();
    world.set_link_snapshots(snapshots);
    let out = run_prog(&mut world, "/bin/chain");
    (world, out)
}

/// The tentpole sweep: at *every* crash point across the first boot's
/// link window, a rebooted world that consults the (possibly partial,
/// torn, or missing) snapshot behaves exactly like one that resolves
/// from scratch off the same recovered disk — a snapshot can be hit,
/// invalidated, or missed, but never *believed wrongly*.
#[test]
fn crash_sweep_never_resurrects_a_stale_snapshot() {
    let cpus = cpus_override();
    // Crash-free reference: the write window of the first boot.
    let (ack, total) = {
        let mut world = World::new();
        world.set_link_snapshots(true);
        world.set_cpus(cpus);
        let exe = build_chain(&mut world);
        let ack = world.barrier();
        assert_eq!(run_prog(&mut world, &exe).0, CHAIN_ANSWER);
        (ack, world.disk_seq())
    };
    assert!(ack < total, "boot 1 must write after the barrier");

    let (mut hits, mut misses, mut invals) = (0u64, 0u64, 0u64);
    for k in ack..=total {
        let tear = k % 3 == 0;
        let (mut on_world, on) = crash_respawn(k, tear, cpus, true);
        let (mut off_world, off) = crash_respawn(k, tear, cpus, false);
        assert_eq!(
            on, off,
            "k={k} tear={tear}: snapshot respawn diverged from full resolve"
        );
        for w in [&on_world, &off_world] {
            assert!(
                !w.log.iter().any(|l| l.contains("UNREPAIRED")),
                "k={k}: fsck left damage unrepaired"
            );
        }
        // Surviving instances keep their addresses in both twins.
        for inst in ["/shared/lib/lib1", "/shared/lib/lib2"] {
            assert_eq!(
                on_world.kernel.vfs.path_to_addr(inst).ok(),
                off_world.kernel.vfs.path_to_addr(inst).ok(),
                "k={k}: {inst} recovered to different addresses"
            );
        }
        let s = on_world.stats();
        hits += s.snapshot_hits;
        misses += s.snapshot_misses;
        invals += s.snapshot_invalidations;
        // A hit is only legal when the record *and* every module it
        // describes committed coherently: believing one must yield the
        // crash-free answer. (A miss or invalidation merely falls back
        // to the cold path, whose outcome on a partially-recovered
        // disk — e.g. a committed-but-empty instance faulting into a
        // contained kill — the identity assert above already pinned to
        // the snapshots-off twin.)
        if s.snapshot_hits > 0 {
            assert_eq!(
                on.0, CHAIN_ANSWER,
                "k={k}: a validated snapshot mapped a wrong world"
            );
        }
        // Every snapshot consultation resolves to exactly one outcome.
        // With snapshots on, each `ldl` init consults exactly once —
        // including inits that then die on the cold path (a crash can
        // leave a committed instance without its metadata; the retry-
        // free "file exists" failure is logged), which consult without
        // ever completing into `init_links`.
        let failed_inits = on_world
            .log
            .iter()
            .filter(|l| l.contains("ldl init failed"))
            .count() as u64;
        assert_eq!(
            s.snapshot_hits + s.snapshot_misses + s.snapshot_invalidations,
            s.ldl.init_links + failed_inits,
            "k={k}: respawn outcomes must partition: {s:?}"
        );
    }
    // The sweep crossed the commit point: early deaths miss (or
    // invalidate a torn record), the late ones validate and hit.
    assert!(hits > 0, "no crash point produced a clean warm hit");
    assert!(
        misses + invals > 0,
        "no crash point produced a lost or torn snapshot"
    );
}

// --- 6. sanitizer + chaos independence ---------------------------------

/// hsan verdicts are snapshot-blind: the lock-elided racy counter
/// (cf. `e11_smp.rs`) reports the same races from the same PCs whether
/// the workers linked through a snapshot hit or a full resolve.
#[test]
fn sanitizer_verdicts_are_identical_with_snapshots_off() {
    const COUNTER_DATA: &str = r#"
.module shcount
.data
.globl count
count:  .word 0
"#;
    const COUNTER_ELIDED: &str = r#"
.module worker
.text
.globl main
main:   li   r16, 5
loop:   la   r8, count
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        addi r16, r16, -1
        bgtz r16, loop
        li   v0, 0
        jr   ra
"#;
    let run = |snapshots: bool| {
        let mut world = World::new();
        world.set_link_snapshots(snapshots);
        world
            .install_template("/shared/lib/shcount.o", COUNTER_DATA)
            .unwrap();
        world
            .install_template("/src/worker.o", COUNTER_ELIDED)
            .unwrap();
        let exe = world
            .link(
                "/bin/worker",
                &[
                    ("/src/worker.o", ShareClass::StaticPrivate),
                    ("/shared/lib/shcount.o", ShareClass::DynamicPublic),
                ],
            )
            .unwrap();
        world.set_cpus(4);
        world.arm_sanitizer();
        for _ in 0..4 {
            world.spawn(&exe).unwrap();
        }
        world.quantum = 50;
        assert_eq!(
            world.run_to_settle(SETTLE_SLICES).expect("settles"),
            WorldExit::AllExited
        );
        let races = world.races().to_vec();
        (world.stats().races_detected, races, world)
    };
    let (on_count, on_races, on_world) = run(true);
    let (off_count, off_races, _) = run(false);
    assert!(on_count >= 1, "elided lock must race");
    assert_eq!(on_count, off_count, "same verdict count");
    assert_eq!(on_races, off_races, "same races, same PCs");
    assert!(
        on_world.stats().snapshot_misses > 0,
        "the snapshot path must actually run"
    );
}
