//! F3 — Figure 3: the Hemlock address-space organization.
//!
//! "The public portion of the address space appears the same in every
//! process, though which of its segments are actually accessible will
//! vary from one protection domain to another. Addresses in the private
//! portion of the address space are overloaded."

use hemlock::{ShareClass, World, WorldExit};
use hkernel::layout;
use hsfs::{AddrLookup, SharedFs};

#[test]
fn public_addresses_identical_across_processes() {
    // Two *different* programs mapping the same public module see it at
    // the same virtual address — the invariant that makes cross-process
    // pointers meaningful.
    let mut world = World::new();
    world
        .install_template(
            "/shared/lib/table.o",
            ".module table\n.text\n.globl get_table\nget_table: la v0, tbl\njr ra\n.data\n.globl tbl\ntbl: .word 1, 2, 3\n",
        )
        .unwrap();
    let main_src = ".module main\n.text\n.globl main\nmain: addi sp, sp, -8\nsw ra, 0(sp)\njal get_table\nlw ra, 0(sp)\naddi sp, sp, 8\njr ra\n";
    world.install_template("/src/main.o", main_src).unwrap();
    world.install_template("/src/other.o", main_src).unwrap();
    let exe1 = world
        .link(
            "/bin/p1",
            &[
                ("/src/main.o", ShareClass::StaticPrivate),
                ("/shared/lib/table.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let exe2 = world
        .link(
            "/bin/p2",
            &[
                ("/src/other.o", ShareClass::StaticPrivate),
                ("/shared/lib/table.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let pid1 = world.spawn(&exe1).unwrap();
    let pid2 = world.spawn(&exe2).unwrap();
    assert_eq!(
        world.run(300_000),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
    let a1 = world.exit_code(pid1).unwrap();
    let a2 = world.exit_code(pid2).unwrap();
    assert_eq!(a1, a2, "&tbl differs between processes");
    assert!(layout::is_public(a1 as u32));
}

#[test]
fn private_addresses_are_overloaded() {
    // Two programs place *different* private data at the same private
    // address — "they mean different things to different processes."
    let mut world = World::new();
    world
        .install_template(
            "/src/a.o",
            ".module a\n.text\n.globl main\nmain: la r8, v\nlw v0, 0(r8)\njr ra\n.data\nv: .word 111\n",
        )
        .unwrap();
    world
        .install_template(
            "/src/b.o",
            ".module b\n.text\n.globl main\nmain: la r8, v\nlw v0, 0(r8)\njr ra\n.data\nv: .word 222\n",
        )
        .unwrap();
    let exe_a = world
        .link("/bin/a", &[("/src/a.o", ShareClass::StaticPrivate)])
        .unwrap();
    let exe_b = world
        .link("/bin/b", &[("/src/b.o", ShareClass::StaticPrivate)])
        .unwrap();
    let pa = world.spawn(&exe_a).unwrap();
    let pb = world.spawn(&exe_b).unwrap();
    assert_eq!(world.run(200_000), WorldExit::AllExited);
    // Identical layout ⇒ identical &v, but different contents.
    assert_eq!(world.exit_code(pa), Some(111));
    assert_eq!(world.exit_code(pb), Some(222));
}

#[test]
fn region_boundaries_match_figure3() {
    assert_eq!(layout::SHARED_BASE, 0x3000_0000);
    assert_eq!(layout::SHARED_END, 0x7000_0000);
    assert_eq!(layout::SHARED_END - layout::SHARED_BASE, 1 << 30); // 1 GB
                                                                   // "only one quarter of the address space is public".
    let public = (layout::SHARED_END - layout::SHARED_BASE) as u64;
    assert_eq!(public * 4, 1 << 32);
    const { assert!(layout::STACK_TOP <= 0x7FFF_0000) };
    assert_eq!(layout::KERNEL_BASE, 0x8000_0000);
}

#[test]
fn stat_exposes_segment_addresses() {
    // "Mapping from file names to addresses is easy: the stat system
    // call already returns an inode number."
    let mut world = World::new();
    world
        .kernel
        .vfs
        .create_file("/shared/seg", 0o666, 1)
        .unwrap();
    let meta = world.kernel.vfs.stat("/shared/seg").unwrap();
    let addr = world.kernel.vfs.path_to_addr("/shared/seg").unwrap();
    assert_eq!(addr, SharedFs::addr_of_ino(meta.ino));
}

#[test]
fn addr_to_path_round_trip_via_syscalls() {
    // The new kernel calls of §3 exercised from guest code: write the
    // resolved path into guest memory and compare.
    let mut world = World::new();
    world
        .kernel
        .vfs
        .mkdir_all("/shared/deep/dir", 0o777, 0)
        .unwrap();
    world
        .kernel
        .vfs
        .create_file("/shared/deep/dir/obj", 0o666, 1)
        .unwrap();
    let addr = world
        .kernel
        .vfs
        .path_to_addr("/shared/deep/dir/obj")
        .unwrap();
    // Guest: len = addr_to_path(addr+5, buf, 64); v1 = offset; exit(v1).
    world
        .install_template(
            "/src/main.o",
            &format!(
                r#"
                .module main
                .text
                .globl main
                main:   li   v0, 10          ; AddrToPath
                        li   a0, {}
                        la   a1, buf
                        li   a2, 64
                        syscall
                        or   v0, v1, r0      ; return the offset
                        jr   ra
                .data
                buf:    .space 64
                "#,
                addr + 5
            ),
        )
        .unwrap();
    let exe = world
        .link("/bin/a.out", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    let pid = world.spawn(&exe).unwrap();
    assert_eq!(world.run(100_000), WorldExit::AllExited);
    assert_eq!(world.exit_code(pid), Some(5), "offset within segment");
}

#[test]
fn linear_and_btree_lookup_agree_and_survive_crash() {
    let mut world = World::new();
    for i in 0..20 {
        world
            .kernel
            .vfs
            .create_file(&format!("/shared/f{i}"), 0o666, 1)
            .unwrap();
    }
    let addr = world.kernel.vfs.path_to_addr("/shared/f19").unwrap();
    world.kernel.vfs.shared.lookup = AddrLookup::Linear;
    let lin = world.kernel.vfs.addr_to_path(addr).unwrap();
    world.kernel.vfs.shared.lookup = AddrLookup::BTree;
    let bt = world.kernel.vfs.addr_to_path(addr).unwrap();
    assert_eq!(lin, bt);
    // Crash: rebuild by scanning, as at boot.
    world.kernel.vfs.shared.boot_scan();
    assert_eq!(
        world.kernel.vfs.addr_to_path(addr).unwrap().0,
        "/shared/f19"
    );
}

#[test]
fn shared_region_faults_resolve_only_for_permitted_users() {
    // "access rights permitting, [the handler] maps the named segment" —
    // a segment owned by uid 2 with mode 0o600 is invisible to uid 1.
    let mut world = World::new();
    world
        .kernel
        .vfs
        .create_file("/shared/secret", 0o600, 2)
        .unwrap();
    let addr = world.kernel.vfs.path_to_addr("/shared/secret").unwrap();
    world
        .install_template(
            "/src/main.o",
            &format!(
                ".module main\n.text\n.globl main\nmain: li r8, {addr}\nlw v0, 0(r8)\njr ra\n"
            ),
        )
        .unwrap();
    let exe = world
        .link("/bin/a.out", &[("/src/main.o", ShareClass::StaticPrivate)])
        .unwrap();
    let pid = world.spawn(&exe).unwrap(); // uid 1
    assert_eq!(world.run(100_000), WorldExit::AllExited);
    assert_eq!(world.exit_code(pid), Some(139), "must die: no access");
    assert!(
        world.log.iter().any(|l| l.contains("access denied")),
        "log: {:?}",
        world.log
    );
}
