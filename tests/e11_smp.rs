//! E11 — deterministic SMP (DESIGN.md §11): N simulated CPUs with
//! per-CPU TLBs, priced shootdowns, and a fixed, replayable interleave.
//!
//! Four claims are tested here:
//!
//! 1. **Determinism** (property): for any scheduling quantum and any
//!    `cpus ∈ {1,2,4,8}`, running the same pressured multi-worker
//!    scenario twice produces identical observables, identical simulated
//!    time, and an identical `htrace` stream, record for record. The
//!    interleave is part of the machine, not of the host.
//! 2. **Single-CPU identity**: the default world has one CPU, an
//!    explicit `set_cpus(1)` changes nothing (trace included), and the
//!    SMP counters stay exactly zero — the pre-SMP behavior is a special
//!    case, not a separate code path.
//! 3. **Semantic invisibility**: the CPU count changes *when* things
//!    happen and what they cost (shootdown IPIs, cold TLBs after
//!    steals), never guest answers — exits, consoles, and final shared
//!    memory match the single-CPU run for every CPU count, while the
//!    shootdown protocol demonstrably fires and reconciles with the
//!    trace nanosecond by nanosecond.
//! 4. **Cross-CPU locking**: the TAS-guarded counter is race-free when
//!    its workers genuinely share instants on different CPUs, and the
//!    lock-elided twin of the same schedule is still caught by hsan.

use hemlock::{
    CostModel, FaultPlan, FaultSite, ShareClass, TraceBuffer, TraceEvent, Unsettled, World,
    WorldExit,
};
use proptest::prelude::*;

/// Scheduler slices before a run counts as unsettled.
const SETTLE_SLICES: u64 = 400_000;

/// Workers in the pressure scenario.
const WORKERS: usize = 4;

/// Shared data for the pressure workers (cf. `tests/e10_pressure.rs`).
const SHARED_DATA: &str = r#"
.module shared_data
.data
.globl results
results: .space 64
.globl done_count
done_count: .word 0
.globl done_lock
done_lock: .word 0
"#;

/// The pressure worker: dirties its shared slot, churns a 4-page anon
/// buffer (the working set reclaim must swap), then publishes its
/// checksum under the TAS lock (cf. `tests/e10_pressure.rs`).
const WORKER: &str = r#"
.module worker
.text
.globl main
main:   la   r8, wid
        lw   r16, 0(r8)
        la   r8, results
        sll  r12, r16, 2
        add  r8, r8, r12
        sw   r0, 0(r8)
        li   r13, 3
pass:   la   r8, buf
        li   r9, 0
        li   r10, 16384
fill:   add  r11, r8, r9
        add  r12, r9, r16
        sw   r12, 0(r11)
        addi r9, r9, 256
        slt  r12, r9, r10
        bne  r12, r0, fill
        li   r17, 0
        li   r9, 0
sum:    add  r11, r8, r9
        lw   r12, 0(r11)
        add  r17, r17, r12
        addi r9, r9, 256
        slt  r12, r9, r10
        bne  r12, r0, sum
        addi r13, r13, -1
        bgtz r13, pass
        la   r8, results
        sll  r12, r16, 2
        add  r8, r8, r12
        sw   r17, 0(r8)
acq:    la   a0, done_lock
        li   a1, 1
        li   v0, 102           ; SVC_TAS
        syscall
        bne  v0, r0, acq
        la   r8, done_count
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        la   r8, done_lock
        sw   r0, 0(r8)
        or   a0, r17, r0
        li   v0, 106           ; print_int(checksum)
        syscall
        li   v0, 0
        jr   ra
.data
.globl wid
wid:    .word 0
.globl buf
buf:    .space 16384
"#;

/// TAS-guarded shared counter (cf. `tests/e9_sanitizer.rs`).
const COUNTER_DATA: &str = r#"
.module shcount
.data
.globl count
count:  .word 0
.globl lock
lock:   .word 0
"#;

const COUNTER_LOCKED: &str = r#"
.module worker
.text
.globl main
main:   li   r16, 5
loop:
acq:    la   a0, lock
        li   a1, 1
        li   v0, 102           ; SVC_TAS
        syscall
        bne  v0, r0, acq
        la   r8, count
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        la   r8, lock
        sw   r0, 0(r8)
        addi r16, r16, -1
        bgtz r16, loop
        li   v0, 0
        jr   ra
"#;

const COUNTER_ELIDED: &str = r#"
.module worker
.text
.globl main
main:   li   r16, 5
loop:   la   r8, count
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        addi r16, r16, -1
        bgtz r16, loop
        li   v0, 0
        jr   ra
"#;

/// Everything a run is judged on for cross-CPU-count comparison.
/// Simulated time is *not* here: contention is charged honestly, so
/// time legitimately differs with the CPU count.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observables {
    settled: Result<WorldExit, Unsettled>,
    exits: Vec<Option<i32>>,
    consoles: Vec<String>,
    shared: Option<(u32, Vec<u32>)>,
}

/// Full fidelity for replay comparison: observables plus the clock and
/// the whole trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Replay {
    obs: Observables,
    sim_ns: u64,
    trace: Vec<String>,
}

fn build_pressure_world() -> (World, String) {
    let mut world = World::new();
    world
        .install_template("/shared/lib/shared_data.o", SHARED_DATA)
        .unwrap();
    world.install_template("/src/worker.o", WORKER).unwrap();
    let exe = world
        .link(
            "/bin/worker",
            &[
                ("/src/worker.o", ShareClass::StaticPrivate),
                ("/shared/lib/shared_data.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    (world, exe)
}

/// Final shared memory of the pressure scenario.
fn shared_words(world: &mut World) -> Option<(u32, Vec<u32>)> {
    let inst = "/shared/lib/shared_data";
    let ino = world.kernel.vfs.resolve(inst).ok()?.ino;
    let base = {
        let meta = world.registry.get(&mut world.kernel.vfs, ino)?;
        meta.find_export("results").unwrap() - meta.base
    };
    let done = world.peek_shared_word(inst, "done_count").unwrap();
    let bytes = world.kernel.vfs.shared.fs.file_bytes(ino).unwrap();
    let results = (0..WORKERS)
        .map(|i| {
            let off = base as usize + 4 * i;
            u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
        })
        .collect();
    Some((done, results))
}

/// Runs `workers` pressure workers on `cpus` CPUs under `budget` frames
/// and collects every observable plus the full trace.
fn run_pressured(
    workers: usize,
    quantum: u64,
    cpus: u32,
    budget: Option<u64>,
    plan: Option<FaultPlan>,
) -> (Replay, World) {
    let (mut world, exe) = build_pressure_world();
    *world.trace_mut() = TraceBuffer::new(1 << 20);
    world.set_cpus(cpus);
    if let Some(frames) = budget {
        world.set_frame_budget(frames);
    }
    if let Some(plan) = plan {
        world.arm_faults(plan);
    }
    let image_wid = {
        let bytes = world.kernel.vfs.read_all(&exe).unwrap();
        hobj::binfmt::decode_image(&bytes)
            .unwrap()
            .find_export("wid")
            .unwrap()
    };
    let mut pids = Vec::new();
    for id in 0..workers {
        let pid = world.spawn(&exe).unwrap();
        let proc = world.kernel.procs.get_mut(&pid).unwrap();
        proc.aspace
            .write_bytes(
                &mut world.kernel.vfs.shared,
                image_wid,
                &(id as u32).to_le_bytes(),
            )
            .unwrap();
        pids.push(pid);
    }
    world.quantum = quantum;
    let settled = world.run_to_settle(SETTLE_SLICES);
    let shared = shared_words(&mut world);
    let obs = Observables {
        settled,
        exits: pids.iter().map(|p| world.exit_code(*p)).collect(),
        consoles: pids.iter().map(|p| world.console(*p)).collect(),
        shared,
    };
    let replay = Replay {
        obs,
        sim_ns: CostModel::default().time(&world.stats()).0,
        trace: world
            .trace()
            .records()
            .map(|r| format!("{} {} {} {}", r.seq, r.pid, r.cost_ns, r.event))
            .collect(),
    };
    (replay, world)
}

/// The unbounded peak working set, used to pick a binding budget.
fn calibrated_half_budget() -> u64 {
    let (_, world) = run_pressured(WORKERS, 300, 1, None, None);
    (world.stats().peak_resident_frames / 2).max(1)
}

fn trace_count(world: &World, kind: &str) -> u64 {
    world
        .trace()
        .records()
        .filter(|r| r.event.kind() == kind)
        .count() as u64
}

fn trace_cost(world: &World, kind: &str) -> u64 {
    world
        .trace()
        .records()
        .filter(|r| r.event.kind() == kind)
        .map(|r| r.cost_ns)
        .sum()
}

// --- 2. single-CPU identity ------------------------------------------

/// A fresh world has one CPU, and a single-CPU run moves none of the
/// SMP counters and emits none of the SMP trace records, pressured or
/// not.
#[test]
fn default_world_is_single_cpu_with_zero_smp_counters() {
    let world = World::new();
    assert_eq!(world.cpus(), 1);

    let budget = calibrated_half_budget();
    let (_, world) = run_pressured(WORKERS, 300, 1, Some(budget), None);
    let stats = world.stats();
    assert!(stats.page_evictions > 0, "budget {budget} must bind");
    assert_eq!(stats.shootdowns, 0);
    assert_eq!(stats.ipis, 0);
    assert_eq!(stats.cross_cpu_steals, 0);
    assert_eq!(trace_count(&world, "TlbShootdown"), 0);
    assert_eq!(trace_count(&world, "CpuSteal"), 0);
}

/// `set_cpus(1)` is the default, not a sibling mode: the run it
/// produces is identical to the untouched world's run down to the last
/// trace record and simulated nanosecond.
#[test]
fn explicit_single_cpu_is_trace_identical_to_default() {
    let budget = calibrated_half_budget();
    let (default_run, _) = {
        // Bypass set_cpus entirely for the reference run.
        let (mut world, exe) = build_pressure_world();
        *world.trace_mut() = TraceBuffer::new(1 << 20);
        world.set_frame_budget(budget);
        let image_wid = {
            let bytes = world.kernel.vfs.read_all(&exe).unwrap();
            hobj::binfmt::decode_image(&bytes)
                .unwrap()
                .find_export("wid")
                .unwrap()
        };
        let mut pids = Vec::new();
        for id in 0..WORKERS {
            let pid = world.spawn(&exe).unwrap();
            let proc = world.kernel.procs.get_mut(&pid).unwrap();
            proc.aspace
                .write_bytes(
                    &mut world.kernel.vfs.shared,
                    image_wid,
                    &(id as u32).to_le_bytes(),
                )
                .unwrap();
            pids.push(pid);
        }
        world.quantum = 300;
        let settled = world.run_to_settle(SETTLE_SLICES);
        let shared = shared_words(&mut world);
        (
            Replay {
                obs: Observables {
                    settled,
                    exits: pids.iter().map(|p| world.exit_code(*p)).collect(),
                    consoles: pids.iter().map(|p| world.console(*p)).collect(),
                    shared,
                },
                sim_ns: CostModel::default().time(&world.stats()).0,
                trace: world
                    .trace()
                    .records()
                    .map(|r| format!("{} {} {} {}", r.seq, r.pid, r.cost_ns, r.event))
                    .collect(),
            },
            world,
        )
    };
    let (explicit, _) = run_pressured(WORKERS, 300, 1, Some(budget), None);
    assert_eq!(explicit, default_run, "set_cpus(1) must be a no-op");
}

// --- 1. the determinism property -------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Any quantum, any CPU count: the same configuration replays with
    /// identical observables, simulated time, and trace stream. The
    /// guest answers additionally match the single-CPU run — the CPU
    /// count never changes what the programs compute.
    #[test]
    fn any_quantum_any_cpu_count_replays_identically(
        quantum in 100u64..500,
        cpus_pow in 0u32..4,
    ) {
        let cpus = 1u32 << cpus_pow; // 1, 2, 4, 8
        let budget = calibrated_half_budget();
        let (first, _) = run_pressured(WORKERS, quantum, cpus, Some(budget), None);
        let (second, _) = run_pressured(WORKERS, quantum, cpus, Some(budget), None);
        prop_assert_eq!(&first, &second, "cpus={} must replay exactly", cpus);

        let (single, _) = run_pressured(WORKERS, quantum, 1, Some(budget), None);
        prop_assert_eq!(
            &first.obs, &single.obs,
            "cpus={} changed a guest observable", cpus
        );
    }
}

// --- 3. semantic invisibility + the priced protocol ------------------

/// Under binding pressure with the workers spread over N CPUs, the
/// shootdown protocol fires (reclaim runs on the boot CPU, victims sit
/// elsewhere), every IPI and page is billed, and the trace records
/// reconcile with the counters and the cost model exactly.
#[test]
fn shootdowns_fire_and_reconcile_with_the_trace() {
    let budget = calibrated_half_budget();
    for cpus in [2u32, 4] {
        let (replay, world) = run_pressured(WORKERS, 300, cpus, Some(budget), None);
        assert_eq!(
            replay.obs.settled,
            Ok(WorldExit::AllExited),
            "log: {:?}",
            world.log
        );
        let stats = world.stats();
        assert!(stats.page_evictions > 0, "budget {budget} must bind");
        assert!(
            stats.shootdowns > 0,
            "cpus={cpus}: reclaim never crossed a CPU"
        );
        assert!(stats.ipis > 0);
        let model = CostModel::default();
        assert_eq!(
            trace_cost(&world, "TlbShootdown"),
            stats.ipis * model.ipi_ns + stats.shootdowns * model.shootdown_ns,
            "trace costs must reconcile with the billed counters"
        );
        let shootdown_records = world
            .trace()
            .records()
            .filter(|r| matches!(r.event, TraceEvent::TlbShootdown { .. }))
            .count() as u64;
        assert!(shootdown_records > 0);
        assert_eq!(
            stats.ipis, shootdown_records,
            "without chaos, exactly one IPI per shootdown event"
        );
    }
}

/// An idle CPU steals when affinity collides (three workers on two
/// CPUs must collide every other round), the steal is counted and
/// traced, and it still changes no guest answer.
#[test]
fn steals_are_counted_and_traced() {
    let (replay, world) = run_pressured(3, 200, 2, None, None);
    assert_eq!(replay.obs.settled, Ok(WorldExit::AllExited));
    let stats = world.stats();
    assert!(stats.cross_cpu_steals > 0, "3 workers on 2 CPUs must steal");
    assert_eq!(trace_count(&world, "CpuSteal"), stats.cross_cpu_steals);

    let (single, _) = run_pressured(3, 200, 1, None, None);
    assert_eq!(replay.obs, single.obs, "steals changed a guest observable");
}

/// The `ShootdownDrop` chaos site is pure cost noise: with every IPI's
/// first transmission dropped, the protocol retransmits — the page
/// count is unchanged, the IPI count doubles, the retried flag shows in
/// the trace, and no guest observable moves.
#[test]
fn dropped_shootdown_ipis_are_retransmitted_and_billed() {
    let budget = calibrated_half_budget();
    let (plain, plain_world) = run_pressured(WORKERS, 300, 4, Some(budget), None);
    let plan = FaultPlan::new(7, 1_000_000).only(&[FaultSite::ShootdownDrop]);
    let (chaos, chaos_world) = run_pressured(WORKERS, 300, 4, Some(budget), Some(plan));

    assert_eq!(
        chaos.obs, plain.obs,
        "a dropped shootdown IPI must not change guest behavior"
    );
    let p = plain_world.stats();
    let c = chaos_world.stats();
    assert!(c.faults_injected > 0, "full rate must inject");
    assert_eq!(c.shootdowns, p.shootdowns, "same pages invalidated");
    assert_eq!(c.ipis, 2 * p.ipis, "every first IPI dropped, all resent");
    assert!(
        chaos_world
            .trace()
            .records()
            .any(|r| matches!(r.event, TraceEvent::TlbShootdown { retried: true, .. })),
        "retransmissions must be visible in the trace"
    );

    // And the chaos run replays from its seed.
    let plan = FaultPlan::new(7, 1_000_000).only(&[FaultSite::ShootdownDrop]);
    let (again, _) = run_pressured(WORKERS, 300, 4, Some(budget), Some(plan));
    assert_eq!(again, chaos, "chaos outcome must replay from its seed");
}

// --- 4. cross-CPU locking --------------------------------------------

fn run_counter(worker_src: &str, workers: usize, cpus: u32) -> (u32, World) {
    let mut world = World::new();
    world
        .install_template("/shared/lib/shcount.o", COUNTER_DATA)
        .unwrap();
    world.install_template("/src/worker.o", worker_src).unwrap();
    let exe = world
        .link(
            "/bin/worker",
            &[
                ("/src/worker.o", ShareClass::StaticPrivate),
                ("/shared/lib/shcount.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    world.set_cpus(cpus);
    world.arm_sanitizer();
    let mut pids = Vec::new();
    for _ in 0..workers {
        pids.push(world.spawn(&exe).unwrap());
    }
    world.quantum = 50;
    let exit = world.run_to_settle(SETTLE_SLICES).expect("world settles");
    assert_eq!(exit, WorldExit::AllExited);
    for pid in pids {
        assert_eq!(world.exit_code(pid), Some(0));
    }
    let count = world
        .peek_shared_word("/shared/lib/shcount", "count")
        .unwrap();
    (count, world)
}

/// The TAS acquire/release edges order memory accesses *across* CPUs:
/// four workers hammering the counter from four CPUs in the same
/// sub-quantum are race-free and sum exactly, while the lock-elided
/// twin of the very same schedule is flagged — racing accesses in the
/// same sub-quantum on different CPUs are unordered, and hsan sees it.
#[test]
fn tas_counter_is_race_free_across_cpus_and_elided_twin_is_not() {
    let (count, world) = run_counter(COUNTER_LOCKED, 4, 4);
    assert_eq!(count, 4 * 5, "locked counter must sum exactly");
    assert_eq!(world.stats().races_detected, 0, "log: {:?}", world.log);
    assert!(world.races().is_empty());
    let san = world.stats();
    assert!(san.sync_edges > 0, "TAS edges must be observed");

    let (_, world) = run_counter(COUNTER_ELIDED, 4, 4);
    assert!(
        world.stats().races_detected >= 1,
        "elided lock must be reported across CPUs"
    );
    let races = world.races();
    assert!(!races.is_empty());
    assert!(
        races[0].first_pid != races[0].second_pid,
        "cross-process by definition"
    );
}

/// Per-CPU observation streams: on a multi-CPU world the sanitizer
/// attributes shared accesses to more than one CPU; on a single-CPU
/// world everything lands on CPU 0.
#[test]
fn sanitizer_sees_accesses_from_every_cpu() {
    let (_, world) = run_counter(COUNTER_ELIDED, 4, 4);
    let san = world.sanitizer().expect("armed");
    let san = san.lock().unwrap();
    assert!(
        san.cpu_accesses().len() > 1,
        "4 workers on 4 CPUs must be observed from >1 CPU: {:?}",
        san.cpu_accesses()
    );

    let (_, world) = run_counter(COUNTER_ELIDED, 4, 1);
    let san = world.sanitizer().expect("armed");
    let san = san.lock().unwrap();
    assert_eq!(
        san.cpu_accesses().keys().copied().collect::<Vec<_>>(),
        vec![0],
        "single-CPU accesses all execute on CPU 0"
    );
}
