//! E6 — the fault→link hot path made fast and observable.
//!
//! Two properties of the tentpole instrumentation, asserted end to end:
//!
//! 1. A *warm* second access to a page translates via the per-process
//!    software TLB — only the first touch walks the page table.
//! 2. The `htrace` ring records the paper's full §2 protocol in order:
//!    fault → translate → map → resolve → restart.

use hemlock::{ShareClass, TraceEvent, World, WorldExit};
use hkernel::{AddressSpace, MemBus, Prot};
use hsfs::{SharedFs, PAGE_SIZE};
use hvm::Bus;

fn run_ok(world: &mut World) {
    assert_eq!(
        world.run_to_completion(),
        WorldExit::AllExited,
        "log: {:?}",
        world.log
    );
}

/// A world with one raw shared segment and a program that loads from it
/// `touches` times; returns the world's final stats.
fn touch_stats(touches: u32) -> hemlock::WorldStats {
    let mut world = World::new();
    world
        .kernel
        .vfs
        .create_file("/shared/seg", 0o666, 1)
        .unwrap();
    let addr = world.kernel.vfs.path_to_addr("/shared/seg").unwrap();
    world
        .install_template(
            "/src/t.o",
            &format!(
                ".module t\n.text\n.globl main\nmain: li r8, {addr}\nli r16, {touches}\n\
                 loop: blez r16, done\nlw v0, 0(r8)\naddi r16, r16, -1\nb loop\n\
                 done: jr ra\n"
            ),
        )
        .unwrap();
    let exe = world
        .link("/bin/t", &[("/src/t.o", ShareClass::StaticPrivate)])
        .unwrap();
    world.spawn(&exe).unwrap();
    run_ok(&mut world);
    world.stats()
}

#[test]
fn warm_second_access_translates_via_tlb() {
    // Direct bus-level assertion: the first load of a page misses and
    // refills the TLB; the second load of the same page is a pure hit.
    let mut aspace = AddressSpace::new();
    let mut shared = SharedFs::new();
    let base = 0x1000_0000;
    aspace.map_anon(base, PAGE_SIZE, Prot::RW).unwrap();
    assert!(!aspace.tlb_cached(base), "nothing cached before first use");
    let mut bus = MemBus::new(&mut aspace, &mut shared);
    bus.load32(base).unwrap();
    assert_eq!(bus.aspace.stats.tlb_misses, 1, "cold access walks");
    assert_eq!(bus.aspace.stats.tlb_hits, 0);
    assert!(bus.aspace.tlb_cached(base), "first walk refilled the TLB");
    bus.load32(base + 4).unwrap();
    assert_eq!(bus.aspace.stats.tlb_misses, 1, "warm access must not walk");
    assert_eq!(bus.aspace.stats.tlb_hits, 1, "warm access hits the TLB");
}

#[test]
fn whole_world_extra_touches_never_walk_again() {
    // World-level version: a program touching the same shared page 50
    // times instead of once adds TLB hits but not a single extra page
    // walk — every additional guest access translates via the cache.
    let once = touch_stats(1);
    let many = touch_stats(50);
    assert_eq!(
        many.tlb_misses, once.tlb_misses,
        "extra touches of a mapped page must all be TLB hits"
    );
    assert!(many.tlb_hits > once.tlb_hits);
    assert!(many.tlb_hit_rate() > once.tlb_hit_rate());
}

#[test]
fn trace_records_fault_protocol_in_order() {
    // Pointer-following into a lazily-instantiated module: program A
    // lists mod0 on its dynamic-module list (so `ldl init` creates the
    // instance, mapped without access) but never calls it. Program B
    // then jumps into the segment through a *raw pointer* — the pure §2
    // protocol: fault, kernel address→name translation, map, lazy
    // resolution of mod0's reference to mod1_fn, restart.
    let mut world = World::new();
    world
        .install_template(
            "/shared/lib/mod0.o",
            ".module mod0\n.uses mod1\n.text\n.globl mod0_fn\n\
             mod0_fn: addi sp, sp, -8\nsw ra, 0(sp)\njal mod1_fn\n\
             lw ra, 0(sp)\naddi sp, sp, 8\njr ra\n",
        )
        .unwrap();
    world
        .install_template(
            "/shared/lib/mod1.o",
            ".module mod1\n.text\n.globl mod1_fn\nmod1_fn: li v0, 77\njr ra\n",
        )
        .unwrap();
    world
        .install_template(
            "/src/amain.o",
            ".module amain\n.text\n.globl main\nmain: li v0, 0\njr ra\n",
        )
        .unwrap();
    let exe_a = world
        .link(
            "/bin/a",
            &[
                ("/src/amain.o", ShareClass::StaticPrivate),
                ("/shared/lib/mod0.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let pa = world.spawn(&exe_a).unwrap();
    run_ok(&mut world);
    assert_eq!(world.exit_code(pa), Some(0), "log: {:?}", world.log);

    // The instance now exists at a globally agreed-upon address, with
    // its reference to mod1_fn still pending. mod0_fn sits at offset 0.
    let addr = world.kernel.vfs.path_to_addr("/shared/lib/mod0").unwrap();
    world
        .install_template(
            "/src/bmain.o",
            &format!(
                ".module bmain\n.text\n.globl main\nmain: addi sp, sp, -8\nsw ra, 0(sp)\n\
                 li r8, {addr}\njalr r8\nlw ra, 0(sp)\naddi sp, sp, 8\njr ra\n"
            ),
        )
        .unwrap();
    let exe_b = world
        .link("/bin/b", &[("/src/bmain.o", ShareClass::StaticPrivate)])
        .unwrap();
    let pid = world.spawn(&exe_b).unwrap();
    run_ok(&mut world);
    assert_eq!(world.exit_code(pid), Some(77), "log: {:?}", world.log);

    let kinds: Vec<&str> = world
        .trace()
        .records_for(pid)
        .map(|r| r.event.kind())
        .collect();
    // The protocol appears as an ordered subsequence of the trace.
    let expected = [
        "FaultTaken",
        "AddrTranslated",
        "SegmentMapped",
        "SymbolResolved",
        "InstructionRestarted",
    ];
    let mut it = kinds.iter();
    for want in expected {
        assert!(
            it.any(|k| *k == want),
            "`{want}` missing (or out of order) in trace: {kinds:?}\n{}",
            world.trace_dump()
        );
    }
    // Every step was billed simulated time from the cost model.
    // (`BlockInvalidated` is host-speed diagnostics and is 0-cost by
    // design — the block cache must not perturb simulated time; a
    // prelink-snapshot miss and rebuild are likewise free by design,
    // so a cold boot with snapshots on prices like one without.)
    assert!(world
        .trace()
        .records_for(pid)
        .filter(|r| {
            !matches!(
                r.event.kind(),
                "BlockInvalidated" | "SnapshotMiss" | "SnapshotRebuilt"
            )
        })
        .all(|r| r.cost_ns > 0));
    // The structured events carry usable payloads.
    assert!(world.trace().records_for(pid).any(|r| matches!(
        &r.event,
        TraceEvent::SegmentMapped { module: Some(m), .. } if m == "mod0"
    )));
    // And the text dump names each protocol step.
    let dump = world.trace_dump();
    for want in expected {
        assert!(dump.contains(want), "dump lacks {want}:\n{dump}");
    }
}
