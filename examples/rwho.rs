//! E1 — the rwho case study (§4, "Administrative Files").
//!
//! "Using the early prototype of our tools under SunOS, we re-implemented
//! rwhod to keep its database in shared memory, rather than in files, and
//! modified the various lookup utilities to access this database
//! directly. The result was both simpler and faster. On our local network
//! of 65 rwhod-equipped machines, the new version of rwho saves a little
//! over a second each time it is called."
//!
//! Two complete implementations run here:
//!
//! * **file-based** (the original design): the daemon rewrites one ASCII
//!   file per machine; every `rwho` invocation opens, reads, and parses
//!   all 65 of them;
//! * **Hemlock** (the paper's design): the daemon stores records
//!   directly into a shared-memory database module; `rwho` is a program
//!   that just *reads memory* — it links the database like any other
//!   external variable.
//!
//! Run with: `cargo run --example rwho`

use baseline::rwho_files::{HostStatus, RwhoFilesBaseline};
use hemlock::{CostModel, ShareClass, World, WorldExit};

const MACHINES: u32 = 65;

/// The shared database module: a host count plus fixed-size records
/// (8 words each: uptime, load×3, nusers, last_update, 2 spare).
const DB_MODULE: &str = r#"
.module rwho_db
.data
.globl nhosts
nhosts: .word 0
.globl hosts
hosts:  .space 2080        ; 65 records x 32 bytes
"#;

/// The daemon: on each "broadcast" writes one record — a handful of
/// stores, no files, no linearization.
const DAEMON: &str = r#"
.module rwhod
.text
.globl main
main:   la   r8, hosts
        la   r10, nhosts
        li   r16, 0            ; machine index
loop:   li   r9, 65
        slt  r9, r16, r9
        beq  r9, r0, done
        ; record = hosts + i*32
        sll  r11, r16, 5
        add  r11, r8, r11
        ; uptime = 86400 * (i % 30 + 1)  (approximate with i*2880+86400)
        li   r12, 2880
        mult r16, r12
        mflo r12
        li   r13, 86400
        add  r12, r12, r13
        sw   r12, 0(r11)
        ; load[0..3] = (i*7)%300, (i*5)%300, (i*3)%300
        li   r12, 7
        mult r16, r12
        mflo r12
        li   r13, 300
        divu r12, r13
        mfhi r12
        sw   r12, 4(r11)
        li   r12, 5
        mult r16, r12
        mflo r12
        divu r12, r13
        mfhi r12
        sw   r12, 8(r11)
        li   r12, 3
        mult r16, r12
        mflo r12
        divu r12, r13
        mfhi r12
        sw   r12, 12(r11)
        ; nusers = i % 5 + 1
        li   r13, 5
        divu r16, r13
        mfhi r12
        addi r12, r12, 1
        sw   r12, 16(r11)
        ; last_update = 42
        li   r12, 42
        sw   r12, 20(r11)
        addi r16, r16, 1
        sw   r16, 0(r10)       ; nhosts = i+1
        b    loop
done:   li   v0, 0
        jr   ra
"#;

/// The rwho utility: sum logged-in users across all machines — pure
/// loads from the shared database.
const RWHO: &str = r#"
.module rwho
.text
.globl main
main:   la   r8, hosts
        la   r10, nhosts
        lw   r10, 0(r10)
        li   r16, 0            ; index
        li   r17, 0            ; user total
loop:   slt  r9, r16, r10
        beq  r9, r0, done
        sll  r11, r16, 5
        add  r11, r8, r11
        lw   r12, 16(r11)      ; nusers
        add  r17, r17, r12
        addi r16, r16, 1
        b    loop
done:   or   a0, r17, r0
        li   v0, 106           ; print_int(total users)
        syscall
        or   v0, r17, r0
        jr   ra
"#;

fn main() {
    let model = CostModel::default();

    // ---------------- file-based (original) ----------------
    let mut world_files = World::new();
    let b = RwhoFilesBaseline::default();
    b.setup(&mut world_files.kernel.vfs).unwrap();
    for i in 0..MACHINES {
        b.daemon_receive(&mut world_files.kernel.vfs, &HostStatus::synthetic(i, 42))
            .unwrap();
    }
    // Measure one rwho invocation's file-system work.
    world_files.kernel.vfs.root.stats = Default::default();
    let (users_files, hosts) = b.rwho(&mut world_files.kernel.vfs).unwrap();
    let file_stats = world_files.stats();
    let file_time = model.time(&file_stats);
    println!("file-based rwho: {users_files} users on {hosts} hosts");
    println!(
        "  {} reads, {} blocks, {} path lookups",
        file_stats.root_fs.reads, file_stats.root_fs.blocks_read, file_stats.root_fs.lookups
    );
    println!("  simulated cost per invocation: {file_time}");

    // ---------------- Hemlock (shared database) ----------------
    let mut world = World::new();
    world
        .install_template("/shared/lib/rwho_db.o", DB_MODULE)
        .unwrap();
    world.install_template("/src/rwhod.o", DAEMON).unwrap();
    world.install_template("/src/rwho.o", RWHO).unwrap();
    let daemon = world
        .link(
            "/bin/rwhod",
            &[
                ("/src/rwhod.o", ShareClass::StaticPrivate),
                ("/shared/lib/rwho_db.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    let rwho = world
        .link(
            "/bin/rwho",
            &[
                ("/src/rwho.o", ShareClass::StaticPrivate),
                ("/shared/lib/rwho_db.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();

    // The daemon populates the shared database once.
    let pid = world.spawn(&daemon).unwrap();
    assert_eq!(
        world.run_to_completion(),
        WorldExit::AllExited,
        "{:?}",
        world.log
    );
    assert_eq!(world.exit_code(pid), Some(0));

    // Measure one rwho invocation.
    let before = world.stats();
    let pid = world.spawn(&rwho).unwrap();
    assert_eq!(
        world.run_to_completion(),
        WorldExit::AllExited,
        "{:?}",
        world.log
    );
    let users_shared = world.exit_code(pid).unwrap() as usize;
    let after = world.stats();
    println!("\nhemlock rwho:    {users_shared} users on {hosts} hosts");
    println!("  output: {}", world.console(pid).trim());
    let delta_blocks = (after.root_fs.blocks_read + after.shared_fs.blocks_read)
        - (before.root_fs.blocks_read + before.shared_fs.blocks_read);
    println!(
        "  {} file blocks read (vs {} for files), {} instructions",
        delta_blocks,
        file_stats.root_fs.blocks_read,
        after.kernel.instructions - before.kernel.instructions
    );
    let shared_time = hemlock::SimTime(model.time(&after).0.saturating_sub(model.time(&before).0));
    println!("  simulated cost per invocation: {shared_time}");

    assert_eq!(users_files, users_shared, "both versions must agree");
    let speedup = file_time.0 as f64 / shared_time.0.max(1) as f64;
    println!(
        "\n==> shared-memory rwho is {speedup:.1}x cheaper per invocation on {MACHINES} machines"
    );
    println!("    (the paper reports \"a little over a second\" saved per call)");
}
