//! Quickstart: share a variable between two programs by *linking* it.
//!
//! This is the paper's core pitch in one file: a counter lives in a
//! shared segment; two separately linked programs access it "with the
//! same syntax employed for private code and data" — the only difference
//! is one linker argument (the sharing class). No set-up calls, no
//! `shmget`, no agreed-upon keys, and the value *persists* between runs
//! like a file.
//!
//! Run with: `cargo run --example quickstart`

use hemlock::{ShareClass, World, WorldExit};

fn main() {
    let mut world = World::new();

    // A shared module: one exported function, one exported variable.
    // Note there is nothing "shared-memory-ish" in the source.
    world
        .install_template(
            "/shared/lib/counter.o",
            r#"
            .module counter
            .text
            .globl bump
            bump:   la   r8, count
                    lw   r9, 0(r8)
                    addi r9, r9, 1
                    sw   r9, 0(r8)
                    or   v0, r9, r0
                    jr   ra
            .data
            .globl count
            count:  .word 0
            "#,
        )
        .expect("assemble counter");

    // Two different programs use `bump` like any external function.
    world
        .install_template(
            "/src/writer.o",
            r#"
            .module writer
            .text
            .globl main
            main:   addi sp, sp, -8
                    sw   ra, 0(sp)
                    jal  bump
                    jal  bump
                    jal  bump
                    or   a0, v0, r0
                    li   v0, 106        ; print_int(count)
                    syscall
                    lw   ra, 0(sp)
                    addi sp, sp, 8
                    li   v0, 0
                    jr   ra
            "#,
        )
        .expect("assemble writer");
    world
        .install_template(
            "/src/reader.o",
            r#"
            .module reader
            .text
            .globl main
            main:   la   r8, count      ; read the *same* variable
                    lw   a0, 0(r8)
                    li   v0, 106        ; print_int(count)
                    syscall
                    li   v0, 0
                    jr   ra
            "#,
        )
        .expect("assemble reader");

    // Link both against the same dynamic-public module.
    let writer = world
        .link(
            "/bin/writer",
            &[
                ("/src/writer.o", ShareClass::StaticPrivate),
                ("/shared/lib/counter.o", ShareClass::DynamicPublic),
            ],
        )
        .expect("link writer");
    let reader = world
        .link(
            "/bin/reader",
            &[
                ("/src/reader.o", ShareClass::StaticPrivate),
                ("/shared/lib/counter.o", ShareClass::DynamicPublic),
            ],
        )
        .expect("link reader");

    println!("== writer bumps the shared counter three times ==");
    let pid = world.spawn(&writer).expect("spawn writer");
    assert_eq!(world.run_to_completion(), WorldExit::AllExited);
    print!("{}", world.console(pid));

    println!("== a separate program reads it (no IPC set-up at all) ==");
    let pid = world.spawn(&reader).expect("spawn reader");
    assert_eq!(world.run_to_completion(), WorldExit::AllExited);
    print!("{}", world.console(pid));

    println!("== the segment is also an ordinary file ==");
    let addr = world
        .kernel
        .vfs
        .path_to_addr("/shared/lib/counter")
        .expect("segment address");
    let value = world
        .peek_shared_word("/shared/lib/counter", "count")
        .expect("peek");
    println!("/shared/lib/counter lives at {addr:#010x}; count = {value}");

    println!("== run the writer again: the value persists like a file ==");
    let pid = world.spawn(&writer).expect("spawn writer again");
    assert_eq!(world.run_to_completion(), WorldExit::AllExited);
    print!("{}", world.console(pid));

    let stats = world.stats();
    println!(
        "\n[{} instructions, {} faults handled by the lazy linker, {} symbols resolved]",
        stats.kernel.instructions, stats.ldl.faults_resolved, stats.ldl.symbols_resolved
    );
}
