//! E4 — the Lynx compiler-tables case study (§4).
//!
//! "The Wisconsin tools produce numeric tables which a pair of utility
//! programs translate into initialized data structures ... the C version
//! of the tables is over 5400 lines, and takes 18 seconds to compile on a
//! Sparcstation 1. ... With Hemlock, the utility programs ... would share
//! a persistent module (the tables) with the Lynx compiler. The utility
//! programs would initialize the tables; the compiler would link them in
//! and use them. These changes would eliminate between 20 and 25% of code
//! in the utility programs."
//!
//! Baseline: every compiler build regenerates and reparses the textual
//! tables. Hemlock: the generator initializes a persistent public module
//! *once*; every compiler run links it and indexes it directly.
//!
//! Run with: `cargo run --example lynx_tables`

use baseline::serialize::ParserTables;
use hemlock::{CostModel, ShareClass, SimTime, World, WorldExit};

const STATES: usize = 150;
const SYMBOLS: usize = 80;
const COMPILER_RUNS: usize = 5;

fn main() {
    let model = CostModel::default();
    let tables = ParserTables::synthetic(STATES, SYMBOLS);

    // ---------------- baseline: regenerate + reparse per run ----------------
    let mut base_world = World::new();
    let text = tables.linearize();
    println!(
        "generated tables: {STATES} states x {SYMBOLS} symbols = {} lines of text \
         (the paper's C tables: >5400 lines, 18 s to compile)",
        text.lines().count()
    );
    base_world
        .kernel
        .vfs
        .write_file("/home/tables.txt", text.as_bytes(), 0o644, 1)
        .unwrap();
    base_world.kernel.vfs.root.stats = Default::default();
    let mut checksum_base: i64 = 0;
    for _ in 0..COMPILER_RUNS {
        // Each compiler pass reads and reconstructs the tables.
        let bytes = base_world.kernel.vfs.read_all("/home/tables.txt").unwrap();
        let t = ParserTables::parse(&String::from_utf8_lossy(&bytes)).unwrap();
        checksum_base += t.transitions[STATES / 2][SYMBOLS / 2] as i64;
    }
    let baseline_time = model.time(&base_world.stats());
    println!(
        "\nbaseline: {COMPILER_RUNS} compiler runs re-read + reparse the tables: {}",
        baseline_time
    );

    // ---------------- Hemlock: persistent shared module ----------------
    let mut world = World::new();
    // The tables module template: exported arrays, zero-initialized; the
    // generator fills them in place, once.
    let table_words = STATES * SYMBOLS;
    world
        .install_template(
            "/shared/lib/lynx_tables.o",
            &format!(
                ".module lynx_tables\n.data\n.globl transitions\ntransitions: .space {}\n.globl actions\nactions: .space {}\n",
                table_words * 4,
                STATES * 4
            ),
        )
        .unwrap();
    // The "compiler": links the tables and indexes them directly — no
    // parsing, no regeneration. Returns transitions[mid].
    let mid_index = (STATES / 2) * SYMBOLS + SYMBOLS / 2;
    world
        .install_template(
            "/src/lynx.o",
            &format!(
                r#"
                .module lynx
                .text
                .globl main
                main:   la   r8, transitions
                        li   r9, {mid_offset}
                        add  r8, r8, r9
                        lw   v0, 0(r8)
                        jr   ra
                "#,
                mid_offset = mid_index * 4
            ),
        )
        .unwrap();
    let exe = world
        .link(
            "/bin/lynx",
            &[
                ("/src/lynx.o", ShareClass::StaticPrivate),
                ("/shared/lib/lynx_tables.o", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();

    // One-time initialization by the generator utility (host-level here;
    // it writes the numeric tables straight into the persistent module).
    {
        let first = world.spawn(&exe).unwrap(); // first run creates the instance
        assert_eq!(
            world.run_to_completion(),
            WorldExit::AllExited,
            "{:?}",
            world.log
        );
        let _ = first;
        let vnode = world.kernel.vfs.resolve("/shared/lib/lynx_tables").unwrap();
        let (base, trans_addr) = {
            let meta = world
                .registry
                .get(&mut world.kernel.vfs, vnode.ino)
                .unwrap();
            (meta.base, meta.find_export("transitions").unwrap())
        };
        let off = (trans_addr - base) as usize;
        let bytes = world
            .kernel
            .vfs
            .shared
            .fs
            .file_bytes_mut(vnode.ino)
            .unwrap();
        for (s, row) in tables.transitions.iter().enumerate() {
            for (y, &v) in row.iter().enumerate() {
                let o = off + (s * SYMBOLS + y) * 4;
                bytes[o..o + 4].copy_from_slice(&(v as i32).to_le_bytes());
            }
        }
    }
    println!("hemlock: generator initialized the persistent module once");

    let before = model.time(&world.stats());
    let mut checksum_hem: i64 = 0;
    for _ in 0..COMPILER_RUNS {
        let pid = world.spawn(&exe).unwrap();
        assert_eq!(
            world.run_to_completion(),
            WorldExit::AllExited,
            "{:?}",
            world.log
        );
        checksum_hem += world.exit_code(pid).unwrap() as i64;
    }
    let hemlock_time = SimTime(model.time(&world.stats()).0 - before.0);
    println!(
        "hemlock:  {COMPILER_RUNS} compiler runs link the module and index it: {}",
        hemlock_time
    );
    assert_eq!(
        checksum_base, checksum_hem,
        "both paths read the same table cell"
    );

    let speedup = baseline_time.0 as f64 / hemlock_time.0.max(1) as f64;
    println!("\n==> table handoff via a persistent shared module is {speedup:.1}x cheaper");
    println!("    (and eliminates the 20-25% of utility-program code that only");
    println!("     existed to linearize and reconstruct the tables)");
}
