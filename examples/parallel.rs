//! E5 — the Presto case study (§4, "Parallel Applications").
//!
//! Porting Presto to IRIX originally required "editing the assembly
//! code" to place shared variables — automated by a 432-line
//! post-processor that consumed "roughly one quarter to one third of
//! total compilation time" and broke with each compiler release. With
//! Hemlock, "selective sharing can be specified with ease": shared
//! variables go in a separate file linked as a **dynamic public module**,
//! and the launcher steers the children to a per-job instance with
//! nothing but a temporary directory, a symlink, and `LD_LIBRARY_PATH`:
//!
//! "The parent process ... creates a temporary directory, puts a symbolic
//! link to the shared data template into this directory, and then adds
//! the name of the directory to the LD_LIBRARY_PATH environment variable.
//! ... The first one to call ldl creates and initializes the shared data
//! from the template, and all of them link it in."
//!
//! Run with: `cargo run --example parallel`

use hemlock::{ShareClass, World, WorldExit};

const WORKERS: usize = 4;
const N: u32 = 1000; // each worker sums i in its stripe of 1..=N

/// The shared data file of the parallel application: a results array, a
/// completion counter, and the spin-lock word guarding it. The lock
/// *must* live here: a private copy per worker would exclude nobody
/// (each process would spin on its own word — exactly the bug hsan's
/// lock-elided variant in `tests/e9_sanitizer.rs` demonstrates).
/// Note: plain globals, no shm calls anywhere.
const SHARED_DATA: &str = r#"
.module shared_data
.data
.globl results
results: .space 64        ; one slot per worker
.globl done_count
done_count: .word 0
.globl done_lock
done_lock: .word 0
"#;

/// The worker: sums its stripe, stores into `results[id]`, bumps
/// `done_count` under a test-and-set spin lock.
const WORKER: &str = r#"
.module worker
.text
.globl main
; a0-equivalent: worker id arrives in the `wid` private word, patched by
; the launcher before spawn (each child gets its own private copy).
main:   la   r8, wid
        lw   r16, 0(r8)        ; id
        ; sum my stripe: i = id+1, step WORKERS, while i <= N
        li   r17, 0            ; sum
        addi r9, r16, 1        ; i
        li   r10, 1000         ; N
        li   r11, 4            ; stride
sum:    slt  r12, r10, r9      ; N < i ?
        bne  r12, r0, store
        add  r17, r17, r9
        add  r9, r9, r11
        b    sum
store:  la   r8, results
        sll  r12, r16, 2
        add  r8, r8, r12
        sw   r17, 0(r8)
        ; lock(done_lock) via test-and-set service
acq:    la   a0, done_lock
        li   a1, 1
        li   v0, 102           ; SVC_TAS
        syscall
        bne  v0, r0, acq       ; spin while old value was 1
        ; critical section: done_count += 1
        la   r8, done_count
        lw   r9, 0(r8)
        addi r9, r9, 1
        sw   r9, 0(r8)
        ; unlock
        la   r8, done_lock
        sw   r0, 0(r8)
        li   v0, 0
        jr   ra
.data
.globl wid
wid:    .word 0
"#;

fn main() {
    let mut world = World::new();

    // The shared-data *template* lives with the application's sources on
    // the shared partition.
    world
        .install_template("/shared/templates/shared_data.o", SHARED_DATA)
        .unwrap();
    world.install_template("/src/worker.o", WORKER).unwrap();

    // Children link the shared data as a dynamic public module by bare
    // name; at link time it does not even need to exist on the path yet
    // (lds just warns).
    let exe = world
        .link(
            "/bin/worker",
            &[
                ("/src/worker.o", ShareClass::StaticPrivate),
                ("shared_data", ShareClass::DynamicPublic),
            ],
        )
        .unwrap();
    println!("linker warnings (expected — module located at run time):");
    for w in &world.log {
        println!("  {w}");
    }

    // --- the launcher (the parent process of the paper) ---
    // 1. temporary directory; 2. symlink to the template; 3. point the
    // children there via LD_LIBRARY_PATH.
    let job_dir = "/shared/tmp/job1";
    world.kernel.vfs.mkdir_all(job_dir, 0o777, 1).unwrap();
    world
        .kernel
        .vfs
        .symlink(
            "/templates/shared_data.o",
            &format!("{job_dir}/shared_data.o"),
            1,
        )
        .unwrap();

    // Watch the run with the happens-before sanitizer (E9). With the
    // lock living in the shared-data module the workers are properly
    // synchronized, so it must stay quiet.
    world.arm_sanitizer();

    let mut pids = Vec::new();
    for id in 0..WORKERS {
        let pid = world
            .spawn_with(&exe, "/", 1, &[("LD_LIBRARY_PATH", job_dir)])
            .unwrap();
        // Give each child its private worker id (patching its private
        // data — each child has its own copy of `wid`).
        let image_wid = {
            let bytes = world.kernel.vfs.read_all("/bin/worker").unwrap();
            hobj::binfmt::decode_image(&bytes)
                .unwrap()
                .find_export("wid")
                .unwrap()
        };
        let proc = world.kernel.procs.get_mut(&pid).unwrap();
        proc.aspace
            .write_bytes(
                &mut world.kernel.vfs.shared,
                image_wid,
                &(id as u32).to_le_bytes(),
            )
            .unwrap();
        pids.push(pid);
    }

    world.quantum = 50; // force interleaving
    assert_eq!(
        world.run_to_completion(),
        WorldExit::AllExited,
        "{:?}",
        world.log
    );
    for pid in &pids {
        assert_eq!(world.exit_code(*pid), Some(0), "{:?}", world.log);
    }

    // The job's shared instance was created beside the real template.
    let inst = "/shared/templates/shared_data";
    let done = world.peek_shared_word(inst, "done_count").unwrap();
    println!("\nall {WORKERS} workers finished (done_count = {done})");
    let mut total = 0u32;
    for id in 0..WORKERS {
        let base = world.peek_shared_word(inst, "results").unwrap();
        let _ = base;
        // results[id] — read the slot through the registry meta.
        let v = {
            let vfs = &mut world.kernel.vfs;
            let vnode = vfs.resolve(inst).unwrap();
            let meta = world.registry.get(vfs, vnode.ino).unwrap();
            let addr = meta.find_export("results").unwrap() + 4 * id as u32;
            let off = (addr - meta.base) as usize;
            let bytes = vfs.shared.fs.file_bytes(vnode.ino).unwrap();
            u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
        };
        println!("  worker {id}: partial sum = {v}");
        total += v;
    }
    assert_eq!(total, N * (N + 1) / 2, "Σ1..N");
    println!("total = {total} (= {N}·({N}+1)/2 ✓)");
    let stats = world.stats();
    assert_eq!(stats.races_detected, 0, "locked run must be race-free");
    println!(
        "sanitizer: 0 races across {} sync edges ({} shadow bytes)",
        stats.sync_edges, stats.shadow_bytes
    );
    println!(
        "\n==> shared variables placed by the *linker*: no assembly post-processor\n\
         (the paper's was 432 lines and ate 25-33% of compile time), no shm\n\
         calls, and per-job instances chosen purely with LD_LIBRARY_PATH."
    );
}
