//! E3 — the xfig case study (§4, "Programs with Non-Linear Data
//! Structures").
//!
//! "While editing, xfig maintains a set of linked lists that represent
//! the objects comprising a figure. It originally translated these lists
//! to and from a pointer-free ASCII representation when reading and
//! writing files. ... The Hemlock version of xfig uses the pre-existing
//! copy routines for files, at a savings of over 800 lines of code."
//!
//! Here the "editor" builds a pointer-rich linked list of figure objects
//! *directly inside a shared segment*, using the per-segment heap package
//! of §5. Saving the figure is a no-op — the segment *is* the file. A
//! separate "viewer" process then walks the raw pointers (the segment is
//! mapped on first touch by the fault handler) and counts the objects.
//! The baseline does what the original xfig did: linearize to ASCII and
//! reparse.
//!
//! Run with: `cargo run --example xfig`

use baseline::serialize::Figure;
use hemlock::segheap::SegHeap;
use hemlock::{CostModel, ShareClass, SimTime, World, WorldExit};

const OBJECTS: u32 = 200;

/// Node layout inside the shared segment (all words):
/// +0 next-object pointer (absolute; 0 = end)
/// +4 kind tag
/// +8 payload word
const NODE_BYTES: u32 = 12;

fn main() {
    let model = CostModel::default();

    // ---------------- baseline: linearize + parse ----------------
    let mut vfs_world = World::new();
    let fig = Figure::synthetic(OBJECTS as usize);
    let text = fig.linearize();
    vfs_world
        .kernel
        .vfs
        .write_file("/home/drawing.fig", text.as_bytes(), 0o644, 1)
        .unwrap();
    vfs_world.kernel.vfs.root.stats = Default::default();
    // "Load": read the file and reconstruct the pointer structure.
    let bytes = vfs_world.kernel.vfs.read_all("/home/drawing.fig").unwrap();
    let reloaded = Figure::parse(&String::from_utf8_lossy(&bytes)).unwrap();
    assert_eq!(reloaded.count(), fig.count());
    let baseline_stats = vfs_world.stats();
    let baseline_time = model.time(&baseline_stats);
    println!(
        "baseline xfig: {} objects, save file = {} bytes of ASCII",
        fig.count(),
        text.len()
    );
    println!(
        "  load = read {} blocks + full reparse; simulated cost {}",
        baseline_stats.root_fs.blocks_read, baseline_time
    );

    // ---------------- Hemlock: the figure lives in a segment ----------------
    let mut world = World::new();
    // The figure segment: a raw shared file with a heap inside.
    world
        .kernel
        .vfs
        .create_file("/shared/drawing.fig", 0o666, 1)
        .unwrap();
    let seg = world
        .kernel
        .vfs
        .path_to_addr("/shared/drawing.fig")
        .unwrap();
    let seg_len: u32 = 64 * 1024;
    {
        let (ino, _) = world.kernel.vfs.shared.addr_to_ino(seg).unwrap();
        world
            .kernel
            .vfs
            .shared
            .fs
            .truncate(ino, seg_len as u64)
            .unwrap();
        let bytes = world.kernel.vfs.shared.fs.file_bytes_mut(ino).unwrap();
        // Head pointer cell at +0, then the heap.
        let mut heap = SegHeap::init(&mut bytes[8..], seg + 8).unwrap();
        // The "editor": build the linked list in place, newest first.
        let mut head = 0u32;
        for i in 0..OBJECTS {
            let node = heap.alloc(NODE_BYTES).unwrap();
            let off = (node - (seg + 8)) as usize;
            let region = heap.raw_region();
            region[off..off + 4].copy_from_slice(&head.to_le_bytes());
            region[off + 4..off + 8].copy_from_slice(&(i % 4).to_le_bytes());
            region[off + 8..off + 12].copy_from_slice(&(i * 10).to_le_bytes());
            head = node;
        }
        bytes[0..4].copy_from_slice(&head.to_le_bytes());
    }
    println!("\nhemlock xfig: built {OBJECTS} objects as raw linked nodes in /shared/drawing.fig");
    println!("  save = nothing to do (the segment is the file)");

    // The "viewer": a separate program that walks the pointers. The
    // first dereference faults; the handler maps the segment; every
    // subsequent access is a plain load.
    world
        .install_template(
            "/src/viewer.o",
            &format!(
                r#"
                .module viewer
                .text
                .globl main
                main:   li   r8, {seg}
                        lw   r9, 0(r8)      ; head pointer (faults, maps)
                        li   r16, 0         ; count
                walk:   beq  r9, r0, done
                        addi r16, r16, 1
                        lw   r9, 0(r9)      ; follow next pointer
                        b    walk
                done:   or   a0, r16, r0
                        li   v0, 106        ; print_int(count)
                        syscall
                        or   v0, r16, r0
                        jr   ra
                "#
            ),
        )
        .unwrap();
    let viewer = world
        .link(
            "/bin/viewer",
            &[("/src/viewer.o", ShareClass::StaticPrivate)],
        )
        .unwrap();
    let before = world.stats();
    let pid = world.spawn(&viewer).unwrap();
    assert_eq!(
        world.run_to_completion(),
        WorldExit::AllExited,
        "{:?}",
        world.log
    );
    let counted = world.exit_code(pid).unwrap() as u32;
    assert_eq!(counted, OBJECTS, "viewer must see every object");
    let after = world.stats();
    let hemlock_time = SimTime(model.time(&after).0 - model.time(&before).0);
    println!("  viewer counted {counted} objects by chasing raw pointers");
    println!(
        "  load = {} fault(s) to map the segment, zero parsing; simulated cost {}",
        after.kernel.segv_faults - before.kernel.segv_faults,
        hemlock_time
    );

    let speedup = baseline_time.0 as f64 / hemlock_time.0.max(1) as f64;
    println!("\n==> pointer-rich load is {speedup:.1}x cheaper than linearize/parse");
    println!("    (the paper: the Hemlock xfig dropped >800 lines of translation code;");
    println!("     the flip side, also reproduced: such figures \"can safely be copied");
    println!("     only by xfig\" — the segment is position-dependent)");
}
